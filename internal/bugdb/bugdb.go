// Package bugdb encodes the paper's study dataset (§3): 67
// configuration-related bug patches from the Ext4 ecosystem, each
// annotated with the usage scenario it belongs to and the critical
// multi-level configuration dependencies that determine its
// manifestation. Tables 3 and 4 are aggregate statistics computed over
// this dataset.
//
// The paper's patch set itself is not public; the dataset here is a
// structured stand-in with the same marginals (see DESIGN.md §2):
// 67 bugs across the four scenarios (13/1/17/36), 132 critical
// dependencies (33 SD data-type, 30 SD value-range, 4 CPD control,
// 1 CCD control, 64 CCD behavioral), and the same per-scenario
// SD/CPD/CCD involvement percentages.
package bugdb

import (
	"fmt"

	"fsdep/internal/depmodel"
)

// Scenario names, matching the corpus scenarios and Table 3 rows.
const (
	ScenarioCreateMount = "mke2fs-mount-ext4"
	ScenarioDefrag      = "mke2fs-mount-ext4-e4defrag"
	ScenarioResize      = "mke2fs-mount-ext4-umount-resize2fs"
	ScenarioFsck        = "mke2fs-mount-ext4-umount-e2fsck"
)

// ScenarioOrder lists the Table 3 rows in order.
var ScenarioOrder = []string{
	ScenarioCreateMount, ScenarioDefrag, ScenarioResize, ScenarioFsck,
}

// CriticalDep is one manually derived critical dependency: a
// dependency that directly determines the manifestation of at least
// one bug case.
type CriticalDep struct {
	// ID is the dataset identifier ("D001"...).
	ID string
	// Kind is the Table 4 sub-category.
	Kind depmodel.Kind
	// Params names the involved parameters (one for SD, two for
	// CPD/CCD).
	Params []depmodel.ParamRef
	// Desc describes the constraint.
	Desc string
}

// Bug is one configuration-related bug patch.
type Bug struct {
	// ID is the dataset identifier ("B001"...).
	ID string
	// Scenario is the usage scenario the bug belongs to.
	Scenario string
	// Title summarizes the bug.
	Title string
	// Patch is the (synthesized) patch reference.
	Patch string
	// DepIDs lists the critical dependencies whose satisfaction
	// triggers the bug.
	DepIDs []string
	// SimReproducible marks bugs the fsim ecosystem reproduces
	// end-to-end (the Figure-1 resize corruption).
	SimReproducible bool
}

// DB is the loaded dataset.
type DB struct {
	Bugs []Bug
	Deps map[string]CriticalDep
}

// Load returns the dataset. The returned value is freshly built and
// safe to mutate.
func Load() *DB {
	deps := buildDeps()
	bugs := buildBugs(deps)
	m := make(map[string]CriticalDep, len(deps))
	for _, d := range deps {
		m[d.ID] = d
	}
	return &DB{Bugs: bugs, Deps: m}
}

// Kinds returns the set of dependency categories bug b involves.
func (db *DB) Kinds(b Bug) map[depmodel.Category]bool {
	out := make(map[depmodel.Category]bool, 3)
	for _, id := range b.DepIDs {
		if d, ok := db.Deps[id]; ok {
			out[d.Kind.Category()] = true
		}
	}
	return out
}

// Table3Row is one row of Table 3.
type Table3Row struct {
	Scenario string
	Bugs     int
	// SD, CPD, CCD count bugs involving at least one dependency of
	// that category.
	SD, CPD, CCD int
}

// Table3 computes the per-scenario distribution.
func (db *DB) Table3() []Table3Row {
	rows := make([]Table3Row, 0, len(ScenarioOrder))
	for _, sc := range ScenarioOrder {
		row := Table3Row{Scenario: sc}
		for _, b := range db.Bugs {
			if b.Scenario != sc {
				continue
			}
			row.Bugs++
			ks := db.Kinds(b)
			if ks[depmodel.SD] {
				row.SD++
			}
			if ks[depmodel.CPD] {
				row.CPD++
			}
			if ks[depmodel.CCD] {
				row.CCD++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Table3Total sums the rows.
func (db *DB) Table3Total() Table3Row {
	total := Table3Row{Scenario: "Total"}
	for _, r := range db.Table3() {
		total.Bugs += r.Bugs
		total.SD += r.SD
		total.CPD += r.CPD
		total.CCD += r.CCD
	}
	return total
}

// Table4Row is one row of Table 4.
type Table4Row struct {
	Kind depmodel.Kind
	// Exists reports whether the sub-category was observed in the
	// dataset.
	Exists bool
	// Count is the number of critical dependencies of this kind.
	Count int
}

// Table4 computes the taxonomy counts over the critical dependencies.
func (db *DB) Table4() []Table4Row {
	counts := make(map[depmodel.Kind]int)
	for _, d := range db.Deps {
		counts[d.Kind]++
	}
	rows := make([]Table4Row, 0, 7)
	for _, k := range depmodel.AllKinds() {
		rows = append(rows, Table4Row{Kind: k, Exists: counts[k] > 0, Count: counts[k]})
	}
	return rows
}

// TotalCriticalDeps returns the number of critical dependencies (the
// paper's 132).
func (db *DB) TotalCriticalDeps() int { return len(db.Deps) }

// Validate checks the dataset's internal consistency: every referenced
// dependency exists, every bug involves at least one SD dependency
// (Table 3's 100% SD column), and parameters match kinds.
func (db *DB) Validate() error {
	for _, b := range db.Bugs {
		if len(b.DepIDs) == 0 {
			return fmt.Errorf("bugdb: %s has no critical dependencies", b.ID)
		}
		hasSD := false
		for _, id := range b.DepIDs {
			d, ok := db.Deps[id]
			if !ok {
				return fmt.Errorf("bugdb: %s references unknown dependency %s", b.ID, id)
			}
			if d.Kind.Category() == depmodel.SD {
				hasSD = true
			}
		}
		if !hasSD {
			return fmt.Errorf("bugdb: %s involves no SD dependency", b.ID)
		}
	}
	for _, d := range db.Deps {
		want := 2
		if d.Kind.Category() == depmodel.SD {
			want = 1
		}
		if len(d.Params) != want {
			return fmt.Errorf("bugdb: dependency %s (%s) names %d params, want %d",
				d.ID, d.Kind, len(d.Params), want)
		}
	}
	return nil
}
