package bugdb

import (
	"testing"

	"fsdep/internal/depmodel"
)

func TestDatasetValidates(t *testing.T) {
	db := Load()
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	db := Load()
	rows := db.Table3()
	want := []Table3Row{
		{Scenario: ScenarioCreateMount, Bugs: 13, SD: 13, CPD: 1, CCD: 13},
		{Scenario: ScenarioDefrag, Bugs: 1, SD: 1, CPD: 0, CCD: 1},
		{Scenario: ScenarioResize, Bugs: 17, SD: 17, CPD: 0, CCD: 17},
		{Scenario: ScenarioFsck, Bugs: 36, SD: 36, CPD: 4, CCD: 34},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, w := range want {
		if rows[i] != w {
			t.Errorf("row %d = %+v, want %+v", i, rows[i], w)
		}
	}
	total := db.Table3Total()
	if total.Bugs != 67 || total.SD != 67 || total.CPD != 5 || total.CCD != 65 {
		t.Errorf("total = %+v", total)
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	db := Load()
	want := map[depmodel.Kind]int{
		depmodel.SDDataType:    33,
		depmodel.SDValueRange:  30,
		depmodel.CPDControl:    4,
		depmodel.CPDValue:      0,
		depmodel.CCDControl:    1,
		depmodel.CCDValue:      0,
		depmodel.CCDBehavioral: 64,
	}
	for _, r := range db.Table4() {
		if r.Count != want[r.Kind] {
			t.Errorf("%s count = %d, want %d", r.Kind, r.Count, want[r.Kind])
		}
		if r.Exists != (want[r.Kind] > 0) {
			t.Errorf("%s exists = %v", r.Kind, r.Exists)
		}
	}
	if got := db.TotalCriticalDeps(); got != 132 {
		t.Errorf("total critical deps = %d, want 132", got)
	}
}

func TestFigure1BugIsReproducible(t *testing.T) {
	db := Load()
	var found *Bug
	for i := range db.Bugs {
		if db.Bugs[i].SimReproducible {
			if found != nil {
				t.Fatalf("multiple reproducible bugs")
			}
			found = &db.Bugs[i]
		}
	}
	if found == nil {
		t.Fatal("no reproducible bug")
	}
	if found.Scenario != ScenarioResize {
		t.Errorf("reproducible bug in %s", found.Scenario)
	}
}

func TestBugIDsUniqueAndOrdered(t *testing.T) {
	db := Load()
	seen := map[string]bool{}
	for _, b := range db.Bugs {
		if seen[b.ID] {
			t.Errorf("duplicate bug ID %s", b.ID)
		}
		seen[b.ID] = true
	}
	if len(db.Bugs) != 67 {
		t.Fatalf("bugs = %d", len(db.Bugs))
	}
}
