package bugdb

import (
	"fmt"

	"fsdep/internal/depmodel"
)

func pr(comp, param string) depmodel.ParamRef {
	return depmodel.ParamRef{Component: comp, Param: param}
}

// sdDataTypeParams are the 33 parameters whose data-type constraint is
// critical for at least one bug case.
var sdDataTypeParams = []depmodel.ParamRef{
	pr("mke2fs", "blocksize"), pr("mke2fs", "inode_size"),
	pr("mke2fs", "inode_ratio"), pr("mke2fs", "blocks_count"),
	pr("mke2fs", "cluster_size"), pr("mke2fs", "reserved_percent"),
	pr("mke2fs", "label"), pr("mke2fs", "backup_bg0"),
	pr("mke2fs", "backup_bg1"), pr("mke2fs", "journal_size"),
	pr("mke2fs", "mmp_interval"), pr("mke2fs", "flex_bg_size"),
	pr("mke2fs", "sparse_super"), pr("mke2fs", "sparse_super2"),
	pr("mke2fs", "resize_inode"), pr("mke2fs", "meta_bg"),
	pr("mke2fs", "bigalloc"), pr("mke2fs", "extent"),
	pr("mke2fs", "inline_data"), pr("mke2fs", "dir_index"),
	pr("mke2fs", "has_journal"), pr("mount", "ro"),
	pr("mount", "dax"), pr("mount", "noload"),
	pr("mount", "data"), pr("mount", "errors"),
	pr("ext4", "commit"), pr("ext4", "stripe"),
	pr("resize2fs", "new_size"), pr("resize2fs", "force"),
	pr("e2fsck", "superblock"), pr("e2fsck", "blocksize_opt"),
	pr("e2fsck", "preen"),
}

// sdValueRangeParams are the 30 parameters whose value-range
// constraint is critical for at least one bug case.
var sdValueRangeParams = []depmodel.ParamRef{
	pr("mke2fs", "blocksize"), pr("mke2fs", "inode_size"),
	pr("mke2fs", "blocks_count"), pr("mke2fs", "reserved_percent"),
	pr("mke2fs", "label"), pr("mke2fs", "cluster_size"),
	pr("mke2fs", "inode_ratio"), pr("mke2fs", "backup_bg1"),
	pr("mke2fs", "journal_size"), pr("mke2fs", "mmp_interval"),
	pr("mke2fs", "flex_bg_size"), pr("mount", "data"),
	pr("mount", "errors"), pr("ext4", "commit"),
	pr("ext4", "stripe"), pr("resize2fs", "new_size"),
	pr("e2fsck", "superblock"), pr("e2fsck", "blocksize_opt"),
	pr("e4defrag", "threshold"), pr("mke2fs", "force"),
	pr("mount", "dax"), pr("mount", "noload"),
	pr("mke2fs", "uninit_bg"), pr("mke2fs", "mmp"),
	pr("mke2fs", "flex_bg"), pr("mke2fs", "journal_dev"),
	pr("mke2fs", "filetype"), pr("mke2fs", "large_file"),
	pr("mke2fs", "64bit"), pr("resize2fs", "minimum"),
}

// cpdControlDeps are the 4 critical cross-parameter dependencies.
var cpdControlDeps = []CriticalDep{
	{Kind: depmodel.CPDControl,
		Params: []depmodel.ParamRef{pr("mke2fs", "meta_bg"), pr("mke2fs", "resize_inode")},
		Desc:   "meta_bg and resize_inode cannot be used together"},
	{Kind: depmodel.CPDControl,
		Params: []depmodel.ParamRef{pr("mke2fs", "bigalloc"), pr("mke2fs", "extent")},
		Desc:   "bigalloc requires the extent feature"},
	{Kind: depmodel.CPDControl,
		Params: []depmodel.ParamRef{pr("e2fsck", "no_change"), pr("e2fsck", "yes")},
		Desc:   "-n and -y are mutually exclusive"},
	{Kind: depmodel.CPDControl,
		Params: []depmodel.ParamRef{pr("e2fsck", "preen"), pr("e2fsck", "no_change")},
		Desc:   "-p and -n are mutually exclusive"},
}

// ccdControlDep is the single observed cross-component control
// dependency.
var ccdControlDep = CriticalDep{
	Kind: depmodel.CCDControl,
	Params: []depmodel.ParamRef{
		pr("mount", "dax"), pr("mke2fs", "inline_data"),
	},
	Desc: "dax can only be enabled when the fs was created without inline_data",
}

// behavioralTargets supplies (source component, target parameter)
// pairs for the 64 behavioral cross-component dependencies; they are
// combined with bug records 1:1.
var behavioralTargets = []struct {
	src    string
	target depmodel.ParamRef
}{
	// Scenario 1 (13): ext4/mount behaviour depends on creation-time
	// parameters.
	{"ext4", pr("mke2fs", "blocksize")},
	{"ext4", pr("mke2fs", "inline_data")},
	{"ext4", pr("mke2fs", "meta_bg")},
	{"ext4", pr("mke2fs", "bigalloc")},
	{"ext4", pr("mke2fs", "64bit")},
	{"ext4", pr("mke2fs", "has_journal")},
	{"ext4", pr("mke2fs", "extent")},
	{"mount", pr("mke2fs", "has_journal")},
	{"ext4", pr("mke2fs", "dir_index")},
	{"ext4", pr("mke2fs", "inode_size")},
	{"ext4", pr("mke2fs", "flex_bg")},
	{"ext4", pr("mke2fs", "uninit_bg")},
	// Scenario 2 (1): e4defrag depends on the extent feature.
	{"e4defrag", pr("mke2fs", "extent")},
	// Scenario 3 (17): resize2fs behaviour depends on creation/mount
	// state.
	{"resize2fs", pr("mke2fs", "sparse_super2")},
	{"resize2fs", pr("mke2fs", "resize_inode")},
	{"resize2fs", pr("mke2fs", "blocks_count")},
	{"resize2fs", pr("mke2fs", "backup_bg1")},
	{"resize2fs", pr("mke2fs", "meta_bg")},
	{"resize2fs", pr("mke2fs", "bigalloc")},
	{"resize2fs", pr("mke2fs", "cluster_size")},
	{"resize2fs", pr("mke2fs", "64bit")},
	{"resize2fs", pr("mke2fs", "blocksize")},
	{"resize2fs", pr("mke2fs", "inode_ratio")},
	{"resize2fs", pr("mke2fs", "flex_bg")},
	{"resize2fs", pr("mke2fs", "uninit_bg")},
	{"resize2fs", pr("mount", "ro")},
	{"resize2fs", pr("e2fsck", "force")},
	{"resize2fs", pr("mke2fs", "sparse_super")},
	{"resize2fs", pr("mke2fs", "inode_size")},
	{"resize2fs", pr("mke2fs", "journal_size")},
	// Scenario 4 (34): e2fsck behaviour depends on creation/mount
	// state.
	{"e2fsck", pr("mke2fs", "blocksize")},
	{"e2fsck", pr("mke2fs", "inode_size")},
	{"e2fsck", pr("mke2fs", "sparse_super")},
	{"e2fsck", pr("mke2fs", "sparse_super2")},
	{"e2fsck", pr("mke2fs", "backup_bg0")},
	{"e2fsck", pr("mke2fs", "backup_bg1")},
	{"e2fsck", pr("mke2fs", "meta_bg")},
	{"e2fsck", pr("mke2fs", "bigalloc")},
	{"e2fsck", pr("mke2fs", "cluster_size")},
	{"e2fsck", pr("mke2fs", "extent")},
	{"e2fsck", pr("mke2fs", "inline_data")},
	{"e2fsck", pr("mke2fs", "dir_index")},
	{"e2fsck", pr("mke2fs", "has_journal")},
	{"e2fsck", pr("mke2fs", "journal_dev")},
	{"e2fsck", pr("mke2fs", "journal_size")},
	{"e2fsck", pr("mke2fs", "filetype")},
	{"e2fsck", pr("mke2fs", "large_file")},
	{"e2fsck", pr("mke2fs", "64bit")},
	{"e2fsck", pr("mke2fs", "mmp")},
	{"e2fsck", pr("mke2fs", "mmp_interval")},
	{"e2fsck", pr("mke2fs", "flex_bg")},
	{"e2fsck", pr("mke2fs", "flex_bg_size")},
	{"e2fsck", pr("mke2fs", "uninit_bg")},
	{"e2fsck", pr("mke2fs", "resize_inode")},
	{"e2fsck", pr("mke2fs", "inode_ratio")},
	{"e2fsck", pr("mke2fs", "blocks_count")},
	{"e2fsck", pr("mount", "ro")},
	{"e2fsck", pr("mount", "noload")},
	{"e2fsck", pr("mount", "data")},
	{"e2fsck", pr("mount", "errors")},
	{"e2fsck", pr("mount", "dax")},
	{"e2fsck", pr("ext4", "commit")},
	{"e2fsck", pr("ext4", "stripe")},
	{"e2fsck", pr("mke2fs", "label")},
}

// buildDeps constructs the 132 critical dependencies with stable IDs.
func buildDeps() []CriticalDep {
	var out []CriticalDep
	id := 0
	add := func(d CriticalDep) {
		id++
		d.ID = fmt.Sprintf("D%03d", id)
		out = append(out, d)
	}
	for _, p := range sdDataTypeParams {
		add(CriticalDep{Kind: depmodel.SDDataType,
			Params: []depmodel.ParamRef{p},
			Desc:   fmt.Sprintf("%s must have the documented data type", p)})
	}
	for _, p := range sdValueRangeParams {
		add(CriticalDep{Kind: depmodel.SDValueRange,
			Params: []depmodel.ParamRef{p},
			Desc:   fmt.Sprintf("%s must stay within its valid range", p)})
	}
	for _, d := range cpdControlDeps {
		add(d)
	}
	add(ccdControlDep)
	for _, bt := range behavioralTargets {
		add(CriticalDep{Kind: depmodel.CCDBehavioral,
			Params: []depmodel.ParamRef{pr(bt.src, ""), bt.target},
			Desc:   fmt.Sprintf("%s's behaviour depends on %s", bt.src, bt.target)})
	}
	return out
}

// scenarioBugTitles carries the 67 bug titles per scenario.
var scenarioBugTitles = map[string][]string{
	ScenarioCreateMount: {
		"mount panics on 64KB-block fs created with -b 65536",
		"inline_data fs unmountable after dir grows past inode",
		"meta_bg fs mounts with stale group descriptor cache",
		"bigalloc fs over-reports free space at mount",
		"64bit fs mounted by old kernel corrupts high block numbers",
		"data=journal mount on journal-less fs oopses",
		"extent-mapped root dir rejected by mount path lookup",
		"noload mount replays journal anyway after crash",
		"dax mount on inline_data fs reads stale pages",
		"dir_index htree depth miscomputed for 1K blocks",
		"large inode_size fs shows negative free inode count",
		"flex_bg first-meta lookup off-by-one at mount",
		"uninit_bg group initialized twice on first mount",
	},
	ScenarioDefrag: {
		"e4defrag silently skips files on non-extent fs and reports success",
	},
	ScenarioResize: {
		"resize2fs corrupts free block count growing sparse_super2 fs",
		"grow past reserved gdt blocks leaves descriptor table torn",
		"shrink below last used block loses extent data",
		"backup superblock not moved when last group changes",
		"meta_bg resize writes descriptors to wrong groups",
		"bigalloc resize miscounts clusters in last group",
		"cluster-unaligned new size accepted, bitmap padding wrong",
		"64bit fs shrink truncates high bits of block count",
		"1K-block fs grow misplaces first data block",
		"inode-ratio derived inode table overflows grown group",
		"flex_bg metadata relocation skipped on grow",
		"uninit_bg groups not initialized after grow",
		"resize of read-only-mounted fs corrupts mount state",
		"resize skips fsck-required check when forced twice",
		"sparse_super backups stale after non-power grow",
		"reserved gdt accounting double-counts on repeated grow",
		"journal blocks relocated over data during shrink",
	},
	ScenarioFsck: {
		"e2fsck miscomputes group checksum for 64KB blocks",
		"preen mode clears valid large inode extra fields",
		"sparse_super backup search misses group 49",
		"sparse_super2 backup list ignored with -b",
		"-b with backup_bg0 backup reads wrong offset",
		"backup group beyond last group crashes pass 0",
		"meta_bg descriptor walk reads past table end",
		"bigalloc bitmap check uses block not cluster units",
		"cluster size mismatch with backup super unreported",
		"extent tree depth check rejects valid 5-level tree",
		"inline_data dir treated as corrupt regular file",
		"htree index rebuilt incorrectly for hash seed 0",
		"journal replay skipped when inode count disagrees",
		"external journal device check dereferences null",
		"journal size check overflows for 4T journals",
		"filetype-less dirent scan misparses names",
		"large_file flag cleared for sparse 2G file",
		"64bit fs pass 5 compares truncated counters",
		"mmp sequence not reset after crashed writer",
		"mmp interval of zero spins pass 0 forever",
		"flex_bg inode table overlap falsely reported",
		"flex_bg_size one reports every group misaligned",
		"uninit_bg groups zeroed losing lazy inode tables",
		"resize_inode reservation freed as orphan blocks",
		"inode ratio edge fs reports wrong inode count",
		"tiny fs pass 1 underflows block accounting",
		"fsck of ro-mounted fs still replays journal",
		"noload-mounted fs marked clean without replay",
		"data=writeback crash leaves undetected stale data",
		"errors=continue masks superblock error flag",
		"dax-mounted fs checked while pages still dirty",
		"commit interval stamp confuses lastcheck logic",
		"stripe-aligned allocator check false positives",
		"volume label with trailing NUL flagged corrupt",
		"orphan list repair loops on self-referencing inode",
		"preen aborts leave mount count unreset",
	},
}

// buildBugs constructs the 67 bug records, wiring each to its critical
// dependencies. Behavioral CCD deps are assigned 1:1 in dataset order;
// SD deps are assigned round-robin; the CPD and CCD-control deps go to
// designated bugs, reproducing Table 3's involvement percentages.
func buildBugs(deps []CriticalDep) []Bug {
	// Index dependency IDs by kind for assignment.
	var sdIDs, behavioralIDs []string
	var cpdIDs []string
	ccdControlID := ""
	for _, d := range deps {
		switch d.Kind {
		case depmodel.SDDataType, depmodel.SDValueRange:
			sdIDs = append(sdIDs, d.ID)
		case depmodel.CPDControl:
			cpdIDs = append(cpdIDs, d.ID)
		case depmodel.CCDControl:
			ccdControlID = d.ID
		case depmodel.CCDBehavioral:
			behavioralIDs = append(behavioralIDs, d.ID)
		}
	}

	var bugs []Bug
	bugNo := 0
	sdCursor := 0
	ccdCursor := 0
	nextSD := func() string {
		id := sdIDs[sdCursor%len(sdIDs)]
		sdCursor++
		return id
	}
	for _, sc := range ScenarioOrder {
		titles := scenarioBugTitles[sc]
		for i, title := range titles {
			bugNo++
			b := Bug{
				ID:       fmt.Sprintf("B%03d", bugNo),
				Scenario: sc,
				Title:    title,
				Patch:    fmt.Sprintf("commit %04x%04x", 0x1a2b+bugNo*7919, 0x3c4d+bugNo*104729),
			}
			b.DepIDs = append(b.DepIDs, nextSD())
			// CCD involvement: all bugs except the last two of the
			// fsck scenario (34 of 36).
			hasCCD := !(sc == ScenarioFsck && i >= len(titles)-2)
			if hasCCD {
				if sc == ScenarioCreateMount && i == 8 {
					// The dax/inline_data bug carries the single
					// CCD-control dependency.
					b.DepIDs = append(b.DepIDs, ccdControlID)
				} else {
					b.DepIDs = append(b.DepIDs, behavioralIDs[ccdCursor])
					ccdCursor++
				}
			}
			// CPD involvement: 1 bug in the create scenario, 4 in the
			// fsck scenario (Table 3: 7.7% and 11.1%).
			switch {
			case sc == ScenarioCreateMount && i == 2:
				b.DepIDs = append(b.DepIDs, cpdIDs[0])
			case sc == ScenarioFsck && i == 1:
				b.DepIDs = append(b.DepIDs, cpdIDs[2])
			case sc == ScenarioFsck && i == 7:
				b.DepIDs = append(b.DepIDs, cpdIDs[1])
			case sc == ScenarioFsck && i == 19:
				b.DepIDs = append(b.DepIDs, cpdIDs[3])
			case sc == ScenarioFsck && i == 23:
				b.DepIDs = append(b.DepIDs, cpdIDs[0])
			}
			if sc == ScenarioResize && i == 0 {
				b.SimReproducible = true // Figure 1
			}
			bugs = append(bugs, b)
		}
	}
	return bugs
}
