package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fsdep/internal/core"
	"fsdep/internal/depmodel"
	"fsdep/internal/depstore"
	"fsdep/internal/depstore/remote"
	"fsdep/internal/sched"
)

// newServerT builds an Analysis over the fixture, a disk store, and an
// httptest server over the full route table.
func newServerT(t *testing.T) (*Analysis, *depstore.Store, *httptest.Server) {
	t.Helper()
	store, err := depstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(svcFixture(), svcScenarios(), core.Options{Store: store}, sched.Sequential())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(a, store, nil, "test").Handler())
	t.Cleanup(ts.Close)
	return a, store, ts
}

func getJSON(t *testing.T, url string, wantStatus int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d (body %s)", url, resp.StatusCode, wantStatus, body)
	}
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: decoding %s: %v", url, body, err)
		}
	}
}

// depsJSON renders a decoded dependency list back to JSON so tests
// compare values, not fmt's pointer addresses inside Constraint.
func depsJSON(t *testing.T, deps []depmodel.Dependency) string {
	t.Helper()
	blob, err := json.Marshal(deps)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

func TestPingAndScenarios(t *testing.T) {
	_, _, ts := newServerT(t)
	var ping map[string]string
	getJSON(t, ts.URL+"/v1/ping", http.StatusOK, &ping)
	if ping["status"] != "ok" || ping["ecosystem"] != "test" {
		t.Errorf("ping = %v", ping)
	}
	var sc struct {
		Scenarios []struct {
			Name       string   `json:"name"`
			Components []string `json:"components"`
		} `json:"scenarios"`
	}
	getJSON(t, ts.URL+"/v1/scenarios", http.StatusOK, &sc)
	if len(sc.Scenarios) != 3 || sc.Scenarios[0].Name != "bridge" {
		t.Errorf("scenarios = %+v", sc)
	}
}

func TestDepsEndpoint(t *testing.T) {
	_, _, ts := newServerT(t)
	var one depsResponse
	getJSON(t, ts.URL+"/v1/deps?scenario=bridge", http.StatusOK, &one)
	if one.Scenario != "bridge" || one.Extracted == 0 || len(one.Dependencies) != one.Extracted {
		t.Errorf("bridge deps = %+v", one)
	}
	var union depsResponse
	getJSON(t, ts.URL+"/v1/deps", http.StatusOK, &union)
	if union.Scenario != "all-scenarios" || union.Extracted < one.Extracted {
		t.Errorf("union deps = %+v", union)
	}
	getJSON(t, ts.URL+"/v1/deps?scenario=ghost", http.StatusNotFound, nil)
}

func TestUploadEndpoint(t *testing.T) {
	_, _, ts := newServerT(t)
	var before depsResponse
	getJSON(t, ts.URL+"/v1/deps?scenario=bridge", http.StatusOK, &before)

	edited := strings.Replace(svcReaderSrc, "512", "2048", 1)
	body, _ := json.Marshal(map[string]any{"source": edited})
	resp, err := http.Post(ts.URL+"/v1/components/reader", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var up uploadResponse
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload = %d: %s", resp.StatusCode, blob)
	}
	if err := json.Unmarshal(blob, &up); err != nil {
		t.Fatal(err)
	}
	if up.Component != "reader" || !up.Reanalyzed ||
		fmt.Sprint(up.StaleScenarios) != "[bridge all]" {
		t.Errorf("upload response = %+v", up)
	}

	var after depsResponse
	getJSON(t, ts.URL+"/v1/deps?scenario=bridge", http.StatusOK, &after)
	if depsJSON(t, after.Dependencies) == depsJSON(t, before.Dependencies) {
		t.Error("upload did not change the served extraction")
	}

	// Broken source: 422, and the served world is unchanged.
	bad, _ := json.Marshal(map[string]any{"source": "int f( {"})
	resp, err = http.Post(ts.URL+"/v1/components/reader", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("broken upload = %d, want 422", resp.StatusCode)
	}
	var again depsResponse
	getJSON(t, ts.URL+"/v1/deps?scenario=bridge", http.StatusOK, &again)
	if depsJSON(t, again.Dependencies) != depsJSON(t, after.Dependencies) {
		t.Error("rejected upload changed the served extraction")
	}

	resp, err = http.Post(ts.URL+"/v1/components/ghost", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown-component upload = %d, want 404", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	a, _, ts := newServerT(t)
	if _, err := a.Results(); err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if !st.Ran || st.Ecosystem != "test" {
		t.Errorf("stats = %+v", st)
	}
	if st.Taint.EngineRuns == 0 {
		t.Error("cold daemon reports zero engine runs after a full analysis")
	}
	if st.Store == nil || st.Store.Writes == 0 {
		t.Errorf("store counters missing or empty: %+v", st.Store)
	}
}

func TestStoreEndpoints(t *testing.T) {
	_, _, ts := newServerT(t)
	key := depstore.Key("wire-record")
	url := ts.URL + "/v1/store/taint/" + key
	payload := []byte("raw payload bytes, not json")

	getJSON(t, url, http.StatusNotFound, nil)

	req, _ := http.NewRequest(http.MethodPut, url, bytes.NewReader(payload))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d, want 204", resp.StatusCode)
	}

	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(got) != string(payload) {
		t.Errorf("GET = %d %q", resp.StatusCode, got)
	}

	// Malformed references are rejected before touching the store.
	for _, bad := range []string{
		"/v1/store/TAINT/" + key, // uppercase kind
		"/v1/store/taint/short",  // non-hex, too-short key
		"/v1/store/taint/" + strings.Repeat("ab", 80), // oversized key
	} {
		getJSON(t, ts.URL+bad, http.StatusBadRequest, nil)
	}
}

func TestStoreEndpointsWithoutStore(t *testing.T) {
	a, err := New(svcFixture(), svcScenarios(), core.Options{}, sched.Sequential())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(a, nil, nil, "test").Handler())
	defer ts.Close()
	getJSON(t, ts.URL+"/v1/store/taint/"+depstore.Key("x"), http.StatusServiceUnavailable, nil)
}

// TestRemoteTierWarmStart is the fleet contract end to end, in
// process: client one runs cold against a daemon's store over HTTP and
// warms it; client two — a different process-worth of state — answers
// every scenario from the daemon with zero taint-engine executions and
// identical results.
func TestRemoteTierWarmStart(t *testing.T) {
	_, daemonStore, ts := newServerT(t)

	runClient := func() (string, core.CacheStats, depstore.StoreStats) {
		store, err := depstore.OpenTiered("", remote.New(ts.URL))
		if err != nil {
			t.Fatal(err)
		}
		comps := svcFixture()
		res, err := core.AnalyzeAll(comps, svcScenarios(), core.Options{Store: store}, sched.Sequential())
		if err != nil {
			t.Fatal(err)
		}
		return renderResults(t, res), core.TotalCacheStats(comps), store.Stats()
	}

	out1, cs1, ss1 := runClient()
	if cs1.EngineRuns == 0 {
		t.Fatal("first client ran no engines — the warm-start test is vacuous")
	}
	if ss1.RemoteWrites == 0 {
		t.Fatalf("first client pushed nothing to the daemon: %+v", ss1)
	}

	out2, cs2, ss2 := runClient()
	if out2 != out1 {
		t.Errorf("second client's results differ:\nwant %s\ngot  %s", out1, out2)
	}
	if cs2.EngineRuns != 0 {
		t.Errorf("second client executed the engine %d times, want 0 (%+v)", cs2.EngineRuns, cs2)
	}
	if ss2.RemoteHits == 0 {
		t.Errorf("second client never hit the daemon store: %+v", ss2)
	}

	dst := daemonStore.Stats()
	if dst.Writes == 0 || dst.Hits == 0 {
		t.Errorf("daemon store never exercised: %+v", dst)
	}
}
