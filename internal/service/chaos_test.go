// The chaos suite for the service tier: the daemon's wire faults are
// injected by the Chaos middleware, the client's recovery machinery
// runs on a ticking fake clock, and the oracle is always the same —
// byte-identical analysis output or clean typed errors, never corrupt
// data, never a permanently wedged client.

package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"fsdep/internal/core"
	"fsdep/internal/depstore"
	"fsdep/internal/depstore/remote"
	"fsdep/internal/sched"
)

// tickClock advances a fixed step on every Now() and the full duration
// on every Sleep(), so breaker cooldowns expire across a run of
// short-circuited requests without any wall time passing.
type tickClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func newTickClock(step time.Duration) *tickClock {
	return &tickClock{now: time.Unix(1_700_000_000, 0), step: step}
}

func (c *tickClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

func (c *tickClock) Sleep(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// chaosClientConfig: single-attempt requests (breaker arithmetic stays
// exact) on a 200ms-per-observation clock against a 1s cooldown, so
// roughly five short-circuited requests earn the next probe.
func chaosClientConfig() remote.Config {
	return remote.Config{
		RequestTimeout: 2 * time.Second,
		MaxRetries:     -1,
		BackoffBase:    10 * time.Millisecond,
		BackoffMax:     50 * time.Millisecond,
		Threshold:      3,
		Cooldown:       time.Second,
		Seed:           7,
		Clock:          newTickClock(200 * time.Millisecond),
	}
}

// analyzeVia runs the full fixture analysis through a tiered store
// whose remote is the given client, returning the rendered results.
func analyzeVia(t *testing.T, client *remote.Client) string {
	t.Helper()
	store, err := depstore.OpenTiered("", client)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AnalyzeAll(svcFixture(), svcScenarios(), core.Options{Store: store}, sched.Sequential())
	if err != nil {
		t.Fatal(err)
	}
	return renderResults(t, res)
}

// TestChaosBreakerRecoveryByteIdentical is the tentpole's end-to-end
// arc: the daemon "dies" mid-run (a window of injected 500s on the
// store routes), the client's breaker opens, the daemon "returns" (the
// fault window ends), a half-open probe re-closes the breaker, and
// every analysis in between and after is byte-identical to a fault-free
// run. Under the old trip-forever client the final state assertion
// fails: nothing ever re-closed the breaker.
func TestChaosBreakerRecoveryByteIdentical(t *testing.T) {
	_, _, healthyTS := newServerT(t)
	want := analyzeVia(t, remote.New(healthyTS.URL))

	// A second daemon whose store wire fails requests 4-15, then heals.
	failWindow := make([]uint64, 0, 12)
	for i := uint64(4); i <= 15; i++ {
		failWindow = append(failWindow, i)
	}
	store, err := depstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(svcFixture(), svcScenarios(), core.Options{Store: store}, sched.Sequential())
	if err != nil {
		t.Fatal(err)
	}
	sv := NewServer(a, store, nil, "test")
	sv.SetChaos(NewChaos(Rule{PathPrefix: "/v1/store/", FailOps: failWindow}))
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	client := remote.NewWithConfig(ts.URL, chaosClientConfig())

	// The run that crosses the fault window: the store tier fails
	// underneath it, the answer must not change.
	if got := analyzeVia(t, client); got != want {
		t.Fatalf("analysis under daemon failure diverged:\nwant %s\ngot  %s", want, got)
	}
	st := client.Stats()
	if st.Opens == 0 {
		t.Fatalf("fault window never opened the breaker (stats %+v) — the chaos run was vacuous", st)
	}

	// The daemon is back; each short-circuited request advances the
	// clock toward the cooldown, then a probe must re-close the breaker.
	for i := 0; i < 100 && client.Stats().Recloses == 0; i++ {
		client.Get("taint", strings.Repeat("ab", 16))
	}
	st = client.Stats()
	if st.Recloses == 0 || st.Probes == 0 {
		t.Fatalf("breaker never recovered after the daemon returned: %+v", st)
	}
	if st.State != "closed" {
		t.Fatalf("final breaker state = %s, want closed (stats %+v)", st.State, st)
	}

	// Fully healed: a fresh run is byte-identical and the remote tier
	// participates again (this client pushes, so the daemon store warms).
	if got := analyzeVia(t, client); got != want {
		t.Fatalf("post-recovery analysis diverged:\nwant %s\ngot  %s", want, got)
	}
	if ds := store.Stats(); ds.Writes == 0 {
		t.Errorf("daemon store never warmed after recovery: %+v", ds)
	}
}

// TestChaosTruncatedResponsesDegradeToMisses: a daemon whose answers
// are cut off mid-body (crash while writing the wire) must read as
// misses/clean errors on the client — the truncated payload must never
// be taken for a record.
func TestChaosTruncatedResponsesDegradeToMisses(t *testing.T) {
	_, daemonStore, _ := newServerT(t)
	payload := []byte(`{"a-real":"record","with":"enough bytes to truncate"}`)
	key := depstore.Key("trunc-target")
	if err := daemonStore.Put("taint", key, payload); err != nil {
		t.Fatal(err)
	}
	a, err := New(svcFixture(), svcScenarios(), core.Options{Store: daemonStore}, sched.Sequential())
	if err != nil {
		t.Fatal(err)
	}
	sv := NewServer(a, daemonStore, nil, "test")
	sv.SetChaos(NewChaos(Rule{PathPrefix: "/v1/store/", TruncateOps: []uint64{1, 2, 3}, TruncateBytes: 8}))
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	cfg := chaosClientConfig()
	cfg.Threshold = 10 // keep the breaker out of the way: truncation itself is under test
	client := remote.NewWithConfig(ts.URL, cfg)
	for i := 0; i < 3; i++ {
		if got, ok := client.Get("taint", key); ok {
			t.Fatalf("truncated response served as a record: %q", got)
		}
	}
	// Request 4 is past the fault plan: the intact record comes through.
	got, ok := client.Get("taint", key)
	if !ok || string(got) != string(payload) {
		t.Fatalf("post-chaos get = %q, %v; want the intact record", got, ok)
	}
}

// TestLoadShedContract: requests beyond the in-flight bound get 503 +
// Retry-After and no handler work; requests within the bound succeed.
func TestLoadShedContract(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	a, err := New(svcFixture(), svcScenarios(), core.Options{}, sched.Sequential())
	if err != nil {
		t.Fatal(err)
	}
	sv := NewServer(a, nil, nil, "test")
	sv.SetMaxInFlight(1)
	// Hold the single slot by parking the first request inside a chaos
	// latency rule whose sleeper blocks until the test releases it.
	blocker := NewChaos(Rule{PathPrefix: "/v1/ping", Latency: time.Hour, LatencyOps: []uint64{1}})
	blocker.Sleep = func(time.Duration) {
		started <- struct{}{}
		<-release
	}
	sv.SetChaos(blocker)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/v1/ping")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started // the single slot is now held

	resp, err := http.Get(ts.URL + "/v1/ping")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded daemon answered %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response carries no Retry-After")
	}
	close(release)
	wg.Wait()

	// Slot free again: served normally, and the shed is counted.
	resp, err = http.Get(ts.URL + "/v1/ping")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-shed ping = %d, want 200", resp.StatusCode)
	}
	if sv.shed.Load() != 1 {
		t.Errorf("shed counter = %d, want 1", sv.shed.Load())
	}
}

// TestChaosDisconnectsAndRetries: dropped connections are transport
// errors the client retries through; with retries exhausted they count
// failures toward the breaker but never produce data.
func TestChaosDisconnectsAndRetries(t *testing.T) {
	_, daemonStore, _ := newServerT(t)
	payload := []byte(`{"survives":"drops"}`)
	key := depstore.Key("drop-target")
	if err := daemonStore.Put("taint", key, payload); err != nil {
		t.Fatal(err)
	}
	a, err := New(svcFixture(), svcScenarios(), core.Options{Store: daemonStore}, sched.Sequential())
	if err != nil {
		t.Fatal(err)
	}
	sv := NewServer(a, daemonStore, nil, "test")
	sv.SetChaos(NewChaos(Rule{PathPrefix: "/v1/store/", DropOps: []uint64{1, 3}}))
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	cfg := chaosClientConfig()
	cfg.MaxRetries = 2
	client := remote.NewWithConfig(ts.URL, cfg)
	// Server ops: 1 dropped, 2 ok — the retry rides out the drop.
	got, ok := client.Get("taint", key)
	if !ok || string(got) != string(payload) {
		t.Fatalf("get across a dropped connection = %q, %v", got, ok)
	}
	// Server ops: 3 dropped, 4 ok — same story, and the breaker stays
	// closed because every logical request ultimately succeeded.
	if got, ok := client.Get("taint", key); !ok || string(got) != string(payload) {
		t.Fatalf("second get across a drop = %q, %v", got, ok)
	}
	st := client.Stats()
	if st.State != "closed" || st.Retries == 0 {
		t.Errorf("stats = %+v, want closed breaker with retries recorded", st)
	}
}

// TestScrubEndpoint: POST /v1/scrub heals a corrupted daemon store and
// the report lands in /v1/stats.
func TestScrubEndpoint(t *testing.T) {
	_, daemonStore, ts := newServerT(t)
	good := depstore.Key("scrub-good")
	if err := daemonStore.Put("taint", good, []byte(`{"ok":1}`)); err != nil {
		t.Fatal(err)
	}
	// Corrupt a second record on disk behind the store's back.
	bad := depstore.Key("scrub-bad")
	if err := daemonStore.Put("taint", bad, []byte(`{"ok":2}`)); err != nil {
		t.Fatal(err)
	}
	recs, err := depstore.ListRecords(daemonStore.Dir(), "taint")
	if err != nil || len(recs) != 2 {
		t.Fatalf("records = %v, %v", recs, err)
	}
	for _, p := range recs {
		if strings.Contains(p, bad[:16]) {
			if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	resp, err := http.Post(ts.URL+"/v1/scrub", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	var rep depstore.ScrubReport
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrub = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 2 || rep.Valid != 1 || rep.Removed != 1 {
		t.Errorf("scrub report = %+v, want 2 scanned / 1 valid / 1 removed", rep)
	}
	// The good record still answers; the bad one is a clean miss.
	if _, ok := daemonStore.Get("taint", good); !ok {
		t.Error("scrub removed the valid record")
	}
	if _, ok := daemonStore.Get("taint", bad); ok {
		t.Error("scrub left the corrupt record answering")
	}
	// The report surfaces in stats until the next scrub.
	var st statsResponse
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if st.Scrub == nil || st.Scrub.Removed != 1 {
		t.Errorf("stats.scrub = %+v, want the last report", st.Scrub)
	}
}
