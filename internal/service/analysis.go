// Package service promotes the batch analysis pipeline to a
// long-running daemon: an Analysis owns a core.Session plus its
// persistent depstore.Store and serves dependency, violation, and
// degradation queries from the warm in-memory world, re-analyzing
// incrementally when a component's source is uploaded. The HTTP
// surface over it lives in server.go; cmd/fsdepd wires both to the
// Ext4 corpus.
//
// Consistency model: single writer, many readers. Queries take a read
// lock and see one coherent analysis generation; Upload takes the
// write lock, installs the edited component (Session.Invalidate), and
// re-runs the stale strict subset before releasing it — so no query
// ever observes a half-invalidated world, and every response is
// byte/structure-identical to what the equivalent CLI invocation over
// the same sources would print. That identity (and this lock) is
// pinned by the tests in this package.
package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"fsdep/internal/conhandleck"
	"fsdep/internal/core"
	"fsdep/internal/depmodel"
	"fsdep/internal/depstore"
	"fsdep/internal/sched"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrUnknownComponent: the upload names a component outside the
	// ecosystem manifest.
	ErrUnknownComponent = errors.New("service: unknown component")
	// ErrUnknownScenario: the query names a scenario outside the corpus.
	ErrUnknownScenario = errors.New("service: unknown scenario")
	// ErrBadSource: the uploaded source failed to parse or lower; the
	// session is left untouched.
	ErrBadSource = errors.New("service: uploaded source does not compile")
)

// Analysis is the daemon's analysis state: one Session over a fixed
// scenario list, guarded by a single-writer/multi-reader lock.
type Analysis struct {
	mu        sync.RWMutex
	sess      *core.Session
	scenarios []core.Scenario
	opts      core.Options
	sopts     sched.Options
	ran       bool
	results   []*core.Result // scenario order; valid when ran
	gen       uint64         // bumped by every successful Upload

	// Violation sweeps are expensive (each trial drives a real fsim
	// pipeline), so the report is cached per analysis generation.
	vioMu  sync.Mutex
	vioGen uint64
	vioRep *conhandleck.Report
}

// New builds an Analysis over the given ecosystem. The component map
// and scenario list are captured (the Session copies the bindings);
// opts.Store attaches the persistent record store shared with remote
// clients.
func New(comps map[string]*core.Component, scenarios []core.Scenario, opts core.Options, sopts sched.Options) (*Analysis, error) {
	sess, err := core.NewSession(comps, scenarios, opts, sopts)
	if err != nil {
		return nil, err
	}
	return &Analysis{
		sess:      sess,
		scenarios: append([]core.Scenario(nil), scenarios...),
		opts:      opts,
		sopts:     sopts,
	}, nil
}

// ensure performs the initial (or retried) full run under the write
// lock using the double-checked pattern, so steady-state queries pay
// only a read lock.
func (a *Analysis) ensure() error {
	a.mu.RLock()
	ok := a.ran
	a.mu.RUnlock()
	if ok {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ran {
		return nil
	}
	res, err := a.sess.Run()
	if err != nil {
		return err
	}
	a.results = res
	a.ran = true
	return nil
}

// Results returns one result per scenario in scenario order, running
// the analysis first if needed. The slice is a copy; the results are
// shared and read-only.
func (a *Analysis) Results() ([]*core.Result, error) {
	if err := a.ensure(); err != nil {
		return nil, err
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	return append([]*core.Result(nil), a.results...), nil
}

// Scenario returns the named scenario's current result.
func (a *Analysis) Scenario(name string) (*core.Result, error) {
	if err := a.ensure(); err != nil {
		return nil, err
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	for _, res := range a.results {
		if res.Scenario.Name == name {
			return res, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownScenario, name)
}

// Union returns the deduplicated union of every scenario's
// dependencies — what the all-scenarios CLI run reports.
func (a *Analysis) Union() (*depmodel.Set, error) {
	results, err := a.Results()
	if err != nil {
		return nil, err
	}
	union := depmodel.NewSet()
	for _, res := range results {
		union.AddAll(res.Deps.Deps())
	}
	return union, nil
}

// Scenarios lists the session's scenarios in order.
func (a *Analysis) Scenarios() []core.Scenario {
	return append([]core.Scenario(nil), a.scenarios...)
}

// Components lists the ecosystem's component names, sorted.
func (a *Analysis) Components() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	comps := a.sess.Components()
	names := make([]string, 0, len(comps))
	for name := range comps {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Upload replaces a component's source (and optionally its parameter
// list; nil keeps the current one) and re-runs the stale strict subset
// before returning, all under the write lock — in-flight queries
// finish against the previous generation, queries after Upload returns
// see the new one, and nothing ever sees the gap between Invalidate
// and re-run. A source that does not compile is rejected with
// ErrBadSource and the session is left exactly as it was.
func (a *Analysis) Upload(name, source string, params []core.Param) (core.Invalidation, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cur := a.sess.Components()
	old, ok := cur[name]
	if !ok {
		return core.Invalidation{}, fmt.Errorf("%w: %q", ErrUnknownComponent, name)
	}
	if params == nil {
		params = old.Params
	}
	fresh := &core.Component{Name: name, Source: source, Params: params}
	if err := fresh.Compile(); err != nil {
		return core.Invalidation{}, fmt.Errorf("%w: %v", ErrBadSource, err)
	}
	inv := a.sess.Invalidate(fresh)
	res, err := a.sess.Run()
	if err != nil {
		// The session keeps the stale marks; the next ensure retries.
		a.ran = false
		return inv, err
	}
	a.results = res
	a.ran = true
	a.gen++
	return inv, nil
}

// Degraded runs a fail-open analysis over the current component
// bindings: failing components are quarantined, healthy ones extract.
// Computed fresh per call (degraded output depends on which components
// fail, which is not cacheable content), under the read lock so
// uploads serialize against it.
func (a *Analysis) Degraded() (*core.DegradedRun, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return core.AnalyzeAllDegraded(a.sess.Components(), a.scenarios, a.opts, a.sopts)
}

// Violations executes ConHandleCk over the current extraction's
// dependency union: each extracted dependency class with a runnable
// violation is exercised against the simulated ecosystem and the
// handling verdict (rejected / benign / silent-corruption) reported.
// The report is cached until an upload changes the extraction.
func (a *Analysis) Violations() (*conhandleck.Report, error) {
	if err := a.ensure(); err != nil {
		return nil, err
	}
	a.mu.RLock()
	gen := a.gen
	results := append([]*core.Result(nil), a.results...)
	a.mu.RUnlock()

	a.vioMu.Lock()
	defer a.vioMu.Unlock()
	if a.vioRep != nil && a.vioGen == gen {
		return a.vioRep, nil
	}
	union := depmodel.NewSet()
	for _, res := range results {
		union.AddAll(res.Deps.Deps())
	}
	rep := conhandleck.RunParallel(union, a.sopts)
	a.vioRep, a.vioGen = rep, gen
	return rep, nil
}

// Stats is one coherent snapshot of the daemon's cache counters.
type Stats struct {
	// Generation counts completed uploads (0 = pristine corpus).
	Generation uint64
	// Ran reports whether the initial full analysis has happened.
	Ran bool
	// Taint aggregates the in-process memo / disk / engine counters over
	// the session's components.
	Taint core.CacheStats
	// Store mirrors the persistent store's counters (zero value when no
	// store is attached).
	Store    depstore.StoreStats
	HasStore bool
}

// StatsSnapshot returns the current counters.
func (a *Analysis) StatsSnapshot() Stats {
	a.mu.RLock()
	defer a.mu.RUnlock()
	st := Stats{
		Generation: a.gen,
		Ran:        a.ran,
		Taint:      core.TotalCacheStats(a.sess.Components()),
	}
	if a.opts.Store != nil {
		st.Store = a.opts.Store.Stats()
		st.HasStore = true
	}
	return st
}

// Close flushes accumulated summary tables to the store.
func (a *Analysis) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sess.Close()
}
