// HTTP/JSON surface over an Analysis plus the raw record-store tier
// remote clients fall through to. Endpoints (all under /v1):
//
//	GET  /v1/ping                    liveness probe
//	GET  /v1/scenarios               scenario list
//	GET  /v1/deps[?scenario=NAME]    extracted dependencies (union or one scenario)
//	GET  /v1/degradations            fail-open run: quarantines + unresolved CCD edges
//	GET  /v1/violations              ConHandleCk verdicts over the current extraction
//	POST /v1/run                     trigger a full ({"degraded":false}) or degraded run
//	POST /v1/components/{name}       upload/replace a component's source → incremental re-run
//	GET  /v1/stats                   engine + store counters
//	POST /v1/scrub                   re-validate every store record, drop/quarantine bad ones
//	GET  /v1/store/{kind}/{key}      raw record payload (remote tier read)
//	PUT  /v1/store/{kind}/{key}      raw record payload (remote tier write)
//	POST /v1/store/batch-get         bulk read: JSON ref manifest → framed record stream
//	POST /v1/store/batch-put         bulk write: framed record stream
//
// The per-record store endpoints carry naked payload bytes: envelope
// framing and checksums remain a per-disk concern, and every payload
// is re-validated by its consumer, so the wire adds no trust. The
// batch endpoints speak internal/depstore/wire's framed stream —
// per-frame checksums, validated end-to-end before a single record is
// admitted — with gzip transport compression negotiated via the
// standard Accept-Encoding/Content-Encoding headers.
//
// Load shedding: Handler bounds concurrently served requests (default
// defaultMaxInFlight, tune with SetMaxInFlight); excess requests are
// answered 503 with Retry-After: 1 instead of queueing, so an
// overloaded daemon degrades to "retry later" — which the remote
// client's backoff honors — rather than to unbounded latency.

package service

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fsdep/internal/conhandleck"
	"fsdep/internal/core"
	"fsdep/internal/depmodel"
	"fsdep/internal/depstore"
	"fsdep/internal/depstore/wire"
)

// maxUpload bounds request bodies (component sources and store
// payloads).
const maxUpload = 64 << 20

// maxBatchBytes bounds a decompressed batch stream's cumulative
// payload, so a compressed bomb cannot balloon in memory past what the
// store could plausibly hold.
const maxBatchBytes = 1 << 30

// defaultMaxInFlight bounds concurrently served requests when
// SetMaxInFlight was not called.
const defaultMaxInFlight = 64

// ScoreFunc partitions dependencies into true/false positives against
// an ecosystem's ground truth (corpus.Score for Ext4). Nil disables
// scoring in responses.
type ScoreFunc func([]depmodel.Dependency) (tp, fp []depmodel.Dependency)

// Server is the HTTP surface. Construct with NewServer and mount
// Handler on an http.Server.
type Server struct {
	a           *Analysis
	store       *depstore.Store
	score       ScoreFunc
	ecosystem   string
	start       time.Time
	maxInFlight int
	chaos       *Chaos

	shed      atomic.Uint64
	scrubMu   sync.Mutex
	lastScrub *depstore.ScrubReport

	// Bulk-protocol counters, surfaced in /v1/stats' service section.
	batchGets      atomic.Uint64
	batchPuts      atomic.Uint64
	batchRecords   atomic.Uint64
	batchRawBytes  atomic.Uint64 // framed stream bytes before compression
	batchWireBytes atomic.Uint64 // bytes actually on the wire
}

// NewServer wires the analysis, the record store served to remote
// clients (may be nil: store endpoints answer 503), the ground-truth
// scorer (may be nil), and the ecosystem label used in responses.
func NewServer(a *Analysis, store *depstore.Store, score ScoreFunc, ecosystem string) *Server {
	return &Server{
		a: a, store: store, score: score, ecosystem: ecosystem,
		start: time.Now(), maxInFlight: defaultMaxInFlight,
	}
}

// SetMaxInFlight bounds concurrently served requests (≤0 restores the
// default). Call before Handler.
func (s *Server) SetMaxInFlight(n int) {
	if n <= 0 {
		n = defaultMaxInFlight
	}
	s.maxInFlight = n
}

// SetChaos installs a wire-fault plan around the route table (nil
// disables — the production state; fsdepd never sets one). Call before
// Handler.
func (s *Server) SetChaos(c *Chaos) { s.chaos = c }

// Handler returns the route table wrapped in the in-flight limiter
// (outermost, so shedding costs no handler work) and, when configured,
// the chaos middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/ping", s.handlePing)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /v1/deps", s.handleDeps)
	mux.HandleFunc("GET /v1/degradations", s.handleDegradations)
	mux.HandleFunc("GET /v1/violations", s.handleViolations)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/components/{name}", s.handleUpload)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/scrub", s.handleScrub)
	mux.HandleFunc("GET /v1/store/{kind}/{key}", s.handleStoreGet)
	mux.HandleFunc("PUT /v1/store/{kind}/{key}", s.handleStorePut)
	mux.HandleFunc("POST /v1/store/batch-get", s.handleBatchGet)
	mux.HandleFunc("POST /v1/store/batch-put", s.handleBatchPut)
	var h http.Handler = mux
	if s.chaos != nil {
		h = s.chaos.Wrap(h)
	}
	return s.limit(h)
}

// limit sheds load beyond maxInFlight with 503 + Retry-After instead
// of queueing: a saturated daemon stays responsive about being
// saturated, and the remote client's backoff turns the answer into a
// bounded wait.
func (s *Server) limit(next http.Handler) http.Handler {
	sem := make(chan struct{}, s.maxInFlight)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			s.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]string{"error": "overloaded: in-flight request limit reached"})
		}
	})
}

// writeJSON renders one response; encoding errors at this point can
// only be delivered as a broken body, so they are swallowed.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorJSON maps service errors onto status codes: client mistakes
// (unknown names, bad sources) are 4xx, analysis failures are 500.
func errorJSON(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownComponent), errors.Is(err, ErrUnknownScenario):
		status = http.StatusNotFound
	case errors.Is(err, ErrBadSource):
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handlePing(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "ecosystem": s.ecosystem})
}

type scenarioInfo struct {
	Name       string   `json:"name"`
	Components []string `json:"components"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	var out []scenarioInfo
	for _, sc := range s.a.Scenarios() {
		out = append(out, scenarioInfo{Name: sc.Name, Components: sc.Components})
	}
	writeJSON(w, http.StatusOK, map[string]any{"ecosystem": s.ecosystem, "scenarios": out})
}

// depsResponse is one extraction answer. Dependencies are sorted the
// way the CLI's -json document sorts them, so a scripted diff against
// a local run compares equal structures.
type depsResponse struct {
	Ecosystem string `json:"ecosystem"`
	Scenario  string `json:"scenario"`
	Extracted int    `json:"extracted"`
	SD        int    `json:"sd"`
	CPD       int    `json:"cpd"`
	CCD       int    `json:"ccd"`
	// TruePositives/FalsePositives are present when the server has a
	// ground-truth scorer.
	TruePositives  *int                  `json:"true_positives,omitempty"`
	FalsePositives *int                  `json:"false_positives,omitempty"`
	Dependencies   []depmodel.Dependency `json:"dependencies"`
}

func (s *Server) depsResponseFor(scenario string, set *depmodel.Set) depsResponse {
	cnt := set.CountByCategory()
	resp := depsResponse{
		Ecosystem: s.ecosystem,
		Scenario:  scenario,
		Extracted: set.Len(),
		SD:        cnt[depmodel.SD],
		CPD:       cnt[depmodel.CPD],
		CCD:       cnt[depmodel.CCD],
		// Marshal [] rather than null for an empty extraction.
		Dependencies: set.Sorted(),
	}
	if resp.Dependencies == nil {
		resp.Dependencies = []depmodel.Dependency{}
	}
	if s.score != nil {
		tp, fp := s.score(set.Deps())
		ntp, nfp := len(tp), len(fp)
		resp.TruePositives, resp.FalsePositives = &ntp, &nfp
	}
	return resp
}

func (s *Server) handleDeps(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("scenario")
	if name == "" {
		union, err := s.a.Union()
		if err != nil {
			errorJSON(w, err)
			return
		}
		writeJSON(w, http.StatusOK, s.depsResponseFor("all-scenarios", union))
		return
	}
	res, err := s.a.Scenario(name)
	if err != nil {
		errorJSON(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.depsResponseFor(name, res.Deps))
}

type degradationsResponse struct {
	Degradations  []string            `json:"degradations"`
	UnresolvedCCD map[string][]string `json:"unresolved_ccd"`
	Scenarios     []scenarioSummary   `json:"scenarios"`
}

type scenarioSummary struct {
	Name        string   `json:"name"`
	Extracted   int      `json:"extracted"`
	Quarantined []string `json:"quarantined,omitempty"`
}

func (s *Server) handleDegradations(w http.ResponseWriter, _ *http.Request) {
	run, err := s.a.Degraded()
	if err != nil {
		errorJSON(w, err)
		return
	}
	resp := degradationsResponse{
		Degradations:  []string{},
		UnresolvedCCD: map[string][]string{},
	}
	for _, d := range run.Degradations {
		resp.Degradations = append(resp.Degradations, d.String())
	}
	for _, res := range run.Results {
		sum := scenarioSummary{Name: res.Scenario.Name, Extracted: res.Deps.Len()}
		for _, q := range res.Quarantined {
			sum.Quarantined = append(sum.Quarantined, q.Component)
		}
		for _, e := range res.UnresolvedCCD {
			key := e.Component + "." + e.Canon
			resp.UnresolvedCCD[key] = append(resp.UnresolvedCCD[key], e.Quarantined)
		}
		resp.Scenarios = append(resp.Scenarios, sum)
	}
	writeJSON(w, http.StatusOK, resp)
}

type trialJSON struct {
	DepKey  string `json:"dep_key"`
	Desc    string `json:"desc"`
	Outcome string `json:"outcome"`
	Detail  string `json:"detail"`
}

type violationsResponse struct {
	Trials            []trialJSON `json:"trials"`
	Rejected          int         `json:"rejected"`
	Benign            int         `json:"benign"`
	SilentCorruptions int         `json:"silent_corruptions"`
}

func (s *Server) handleViolations(w http.ResponseWriter, _ *http.Request) {
	rep, err := s.a.Violations()
	if err != nil {
		errorJSON(w, err)
		return
	}
	resp := violationsResponse{
		Trials:            []trialJSON{},
		Rejected:          rep.Counts[conhandleck.Rejected],
		Benign:            rep.Counts[conhandleck.Benign],
		SilentCorruptions: rep.Counts[conhandleck.SilentCorruption],
	}
	for _, t := range rep.Trials {
		resp.Trials = append(resp.Trials, trialJSON{
			DepKey: t.DepKey, Desc: t.Desc, Outcome: t.Outcome.String(), Detail: t.Detail,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

type runRequest struct {
	Degraded bool `json:"degraded"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := decodeBody(r, &req); err != nil {
		errorJSON(w, fmt.Errorf("%w: %v", ErrBadSource, err))
		return
	}
	if req.Degraded {
		run, err := s.a.Degraded()
		if err != nil {
			errorJSON(w, err)
			return
		}
		union := depmodel.NewSet()
		for _, res := range run.Results {
			union.AddAll(res.Deps.Deps())
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"mode": "degraded", "scenarios": len(run.Results),
			"extracted": union.Len(), "quarantined": len(run.Degradations),
		})
		return
	}
	union, err := s.a.Union()
	if err != nil {
		errorJSON(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"mode": "strict", "scenarios": len(s.a.Scenarios()), "extracted": union.Len(),
	})
}

// paramJSON mirrors core.Param for the upload body.
type paramJSON struct {
	Name  string `json:"name"`
	Var   string `json:"var"`
	Func  string `json:"func,omitempty"`
	CType string `json:"ctype,omitempty"`
	Doc   string `json:"doc,omitempty"`
}

type uploadRequest struct {
	Source string `json:"source"`
	// Params nil keeps the component's current parameter list.
	Params []paramJSON `json:"params"`
}

type uploadResponse struct {
	Component      string   `json:"component"`
	Dependents     []string `json:"dependents"`
	StaleScenarios []string `json:"stale_scenarios"`
	Reanalyzed     bool     `json:"reanalyzed"`
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req uploadRequest
	if err := decodeBody(r, &req); err != nil {
		errorJSON(w, fmt.Errorf("%w: %v", ErrBadSource, err))
		return
	}
	var params []core.Param
	if req.Params != nil {
		params = make([]core.Param, 0, len(req.Params))
		for _, p := range req.Params {
			params = append(params, core.Param{Name: p.Name, Var: p.Var, Func: p.Func, CType: p.CType, Doc: p.Doc})
		}
	}
	inv, err := s.a.Upload(name, req.Source, params)
	if err != nil {
		errorJSON(w, err)
		return
	}
	resp := uploadResponse{
		Component:      inv.Component,
		Dependents:     inv.Dependents,
		StaleScenarios: inv.StaleScenarios,
		Reanalyzed:     true,
	}
	if resp.Dependents == nil {
		resp.Dependents = []string{}
	}
	if resp.StaleScenarios == nil {
		resp.StaleScenarios = []string{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleScrub re-validates every record in the daemon's store,
// removing (or, with {"quarantine":true}, preserving under
// quarantine/) the ones that fail, and answers with the report. The
// report also surfaces in /v1/stats until the next scrub.
func (s *Server) handleScrub(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "no store attached"})
		return
	}
	var req struct {
		Quarantine bool `json:"quarantine"`
	}
	if err := decodeBody(r, &req); err != nil {
		errorJSON(w, fmt.Errorf("%w: %v", ErrBadSource, err))
		return
	}
	rep, err := s.store.Scrub(depstore.ScrubOptions{Quarantine: req.Quarantine})
	if err != nil {
		errorJSON(w, err)
		return
	}
	s.scrubMu.Lock()
	s.lastScrub = &rep
	s.scrubMu.Unlock()
	writeJSON(w, http.StatusOK, rep)
}

// statsResponse flattens the layered counters; the CI smoke step greps
// these keys, so their names are load-bearing (new keys are fine,
// renames are not).
type statsResponse struct {
	Ecosystem     string `json:"ecosystem"`
	UptimeSeconds int64  `json:"uptime_seconds"`
	Generation    uint64 `json:"generation"`
	Ran           bool   `json:"ran"`
	Taint         struct {
		Hits          uint64 `json:"hits"`
		Misses        uint64 `json:"misses"`
		DiskHits      uint64 `json:"disk_hits"`
		DiskMisses    uint64 `json:"disk_misses"`
		EngineRuns    uint64 `json:"engine_runs"`
		SummaryHits   uint64 `json:"summary_hits"`
		SummaryMisses uint64 `json:"summary_misses"`
	} `json:"taint"`
	Store *struct {
		Hits          uint64 `json:"hits"`
		Misses        uint64 `json:"misses"`
		Invalidations uint64 `json:"invalidations"`
		Writes        uint64 `json:"writes"`
		Evictions     uint64 `json:"evictions"`
		WriteBackErrs uint64 `json:"write_back_errors"`
	} `json:"store,omitempty"`
	Service struct {
		InFlightLimit int    `json:"in_flight_limit"`
		Shed          uint64 `json:"shed"`
		// Bulk store protocol counters: completed bulk transfers, the
		// records they carried, and the framed bytes before/after
		// transport compression.
		BatchGets      uint64 `json:"batch_gets"`
		BatchPuts      uint64 `json:"batch_puts"`
		BatchRecords   uint64 `json:"batch_records"`
		BatchRawBytes  uint64 `json:"batch_raw_bytes"`
		BatchWireBytes uint64 `json:"batch_wire_bytes"`
	} `json:"service"`
	Scrub *depstore.ScrubReport `json:"scrub,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.a.StatsSnapshot()
	resp := statsResponse{
		Ecosystem:     s.ecosystem,
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
		Generation:    st.Generation,
		Ran:           st.Ran,
	}
	resp.Taint.Hits = st.Taint.Hits
	resp.Taint.Misses = st.Taint.Misses
	resp.Taint.DiskHits = st.Taint.DiskHits
	resp.Taint.DiskMisses = st.Taint.DiskMisses
	resp.Taint.EngineRuns = st.Taint.EngineRuns
	resp.Taint.SummaryHits = st.Taint.SummaryHits
	resp.Taint.SummaryMisses = st.Taint.SummaryMisses
	if st.HasStore {
		resp.Store = &struct {
			Hits          uint64 `json:"hits"`
			Misses        uint64 `json:"misses"`
			Invalidations uint64 `json:"invalidations"`
			Writes        uint64 `json:"writes"`
			Evictions     uint64 `json:"evictions"`
			WriteBackErrs uint64 `json:"write_back_errors"`
		}{
			Hits:          st.Store.Hits,
			Misses:        st.Store.Misses,
			Invalidations: st.Store.Invalidations,
			Writes:        st.Store.Writes,
			Evictions:     st.Store.Evictions,
			WriteBackErrs: st.Store.WriteBackErrors,
		}
	}
	resp.Service.InFlightLimit = s.maxInFlight
	resp.Service.Shed = s.shed.Load()
	resp.Service.BatchGets = s.batchGets.Load()
	resp.Service.BatchPuts = s.batchPuts.Load()
	resp.Service.BatchRecords = s.batchRecords.Load()
	resp.Service.BatchRawBytes = s.batchRawBytes.Load()
	resp.Service.BatchWireBytes = s.batchWireBytes.Load()
	s.scrubMu.Lock()
	resp.Scrub = s.lastScrub
	s.scrubMu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// validRecordRef rejects anything that could escape the store
// directory or collide with its framing: kinds are short lowercase
// words, keys are hex content addresses.
func validRecordRef(kind, key string) bool {
	if len(kind) == 0 || len(kind) > 32 || len(key) < 8 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(kind); i++ {
		c := kind[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false
		}
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	kind, key := r.PathValue("kind"), r.PathValue("key")
	if !validRecordRef(kind, key) {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed record reference"})
		return
	}
	if s.store == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "no store attached"})
		return
	}
	payload, ok := s.store.Get(kind, key)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such record"})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(payload)
}

func (s *Server) handleStorePut(w http.ResponseWriter, r *http.Request) {
	kind, key := r.PathValue("kind"), r.PathValue("key")
	if !validRecordRef(kind, key) {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed record reference"})
		return
	}
	if s.store == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "no store attached"})
		return
	}
	payload, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUpload))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{"error": err.Error()})
		return
	}
	if err := s.store.Put(kind, key, payload); err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// batchManifest is the batch-get request body: the refs the client
// wants in one round trip.
type batchManifest struct {
	Refs []struct {
		Kind string `json:"kind"`
		Key  string `json:"key"`
	} `json:"refs"`
}

// countingWriter counts bytes written through it (the wire side of the
// raw-vs-compressed stats).
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// acceptsGzip reports whether the request negotiates gzip response
// compression.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc := strings.TrimSpace(part)
		if i := strings.IndexByte(enc, ';'); i >= 0 {
			enc = strings.TrimSpace(enc[:i])
		}
		if enc == "gzip" {
			return true
		}
	}
	return false
}

// handleBatchGet answers a ref manifest with one framed record stream:
// every requested ref appears exactly once, as a payload frame or an
// explicit miss, so the client needs no follow-up round trips to
// distinguish "absent" from "not answered". The response is
// gzip-compressed when the client negotiates it.
func (s *Server) handleBatchGet(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "no store attached"})
		return
	}
	var manifest batchManifest
	if err := decodeBody(r, &manifest); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if len(manifest.Refs) > wire.MaxRecords {
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": fmt.Sprintf("manifest exceeds %d refs", wire.MaxRecords)})
		return
	}
	for _, ref := range manifest.Refs {
		if !validRecordRef(ref.Kind, ref.Key) {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed record reference"})
			return
		}
	}
	recs := make([]wire.Record, len(manifest.Refs))
	served := 0
	for i, ref := range manifest.Refs {
		recs[i] = wire.Record{Kind: ref.Kind, Key: ref.Key}
		if payload, ok := s.store.Get(ref.Kind, ref.Key); ok {
			recs[i].Payload = payload
			served++
		} else {
			recs[i].Missing = true
		}
	}
	s.batchGets.Add(1)
	s.batchRecords.Add(uint64(served))
	w.Header().Set("Content-Type", "application/octet-stream")
	wireCount := &countingWriter{w: w}
	out := io.Writer(wireCount)
	var gz *gzip.Writer
	if acceptsGzip(r) {
		w.Header().Set("Content-Encoding", "gzip")
		gz = gzip.NewWriter(wireCount)
		out = gz
	}
	w.WriteHeader(http.StatusOK)
	rawCount := &countingWriter{w: out}
	// Write errors past this point mean the client went away or the
	// stream tore mid-flight; the framing's trailer and checksums make
	// the client refuse the partial stream, so there is nothing useful
	// to do here but stop.
	if err := wire.Write(rawCount, recs); err == nil && gz != nil {
		_ = gz.Close()
	}
	s.batchRawBytes.Add(uint64(rawCount.n))
	s.batchWireBytes.Add(uint64(wireCount.n))
}

// handleBatchPut ingests one framed record stream. The whole stream is
// parsed and validated — framing, per-frame checksums, record
// references — before the first record is stored, so a truncated or
// corrupted upload admits nothing.
func (s *Server) handleBatchPut(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "no store attached"})
		return
	}
	body := io.Reader(http.MaxBytesReader(w, r.Body, maxBatchBytes))
	wireCount := &countingReader{r: body}
	stream := io.Reader(wireCount)
	if strings.EqualFold(r.Header.Get("Content-Encoding"), "gzip") {
		gz, err := gzip.NewReader(stream)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed gzip body"})
			return
		}
		defer gz.Close()
		stream = gz
	}
	rawCount := &countingReader{r: stream}
	recs, err := wire.ReadAll(rawCount, maxBatchBytes)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	for _, rec := range recs {
		if rec.Missing || !validRecordRef(rec.Kind, rec.Key) {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed record in batch"})
			return
		}
	}
	for _, rec := range recs {
		if err := s.store.Put(rec.Kind, rec.Key, rec.Payload); err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
	}
	s.batchPuts.Add(1)
	s.batchRecords.Add(uint64(len(recs)))
	s.batchRawBytes.Add(uint64(rawCount.n))
	s.batchWireBytes.Add(uint64(wireCount.n))
	w.WriteHeader(http.StatusNoContent)
}

// countingReader counts bytes read through it (the ingest side of the
// raw-vs-compressed stats).
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// decodeBody parses an optional JSON body; an empty body decodes to
// the zero request.
func decodeBody(r *http.Request, v any) error {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxUpload))
	if err != nil {
		return err
	}
	if len(body) == 0 {
		return nil
	}
	return json.Unmarshal(body, v)
}
