// Plan-driven chaos middleware for the HTTP surface — faultfs's
// discipline one layer up. Where faultfs fails the store's filesystem
// operations, Chaos fails the daemon's *wire*: a matching request can
// be delayed, answered with an injected error status, dropped
// mid-connection, or have its response body truncated. Rules fire at
// planned 1-based per-rule request indices, so a chaos test replays
// exactly; there is no randomness here at all — a test that wants
// jitter derives indices from a prng.Source itself.
//
// Chaos is wired behind Server.SetChaos and is nil (zero overhead) in
// production; fsdepd never enables it. Its job is to let the chaos
// suite prove the client-side claims — retries ride out injected 5xx,
// truncation degrades to a miss rather than corrupt data, drops trip
// and later re-close the breaker — against the real route table.

package service

import (
	"net/http"
	"strings"
	"sync"
	"time"
)

// Rule injects faults into requests whose path starts with PathPrefix.
// Indices are 1-based counts of matching requests, per rule.
type Rule struct {
	// PathPrefix selects requests ("" matches everything).
	PathPrefix string
	// Latency is added to requests listed in LatencyOps, or to every
	// matching request when LatencyOps is empty.
	Latency    time.Duration
	LatencyOps []uint64
	// FailOps answer with FailStatus (default 500) and no handler run.
	// A 503 carries Retry-After: 1, matching the load-shed contract.
	FailOps    []uint64
	FailStatus int
	// DropOps abort the connection before any response bytes — the
	// daemon dying between accept and answer.
	DropOps []uint64
	// TruncateOps run the handler but forward only TruncateBytes
	// (default 16) of its response before aborting the connection — a
	// crash mid-write on the wire.
	TruncateOps   []uint64
	TruncateBytes int
}

// ruleState is a compiled Rule plus its match counter.
type ruleState struct {
	rule    Rule
	latency map[uint64]bool
	fail    map[uint64]bool
	drop    map[uint64]bool
	trunc   map[uint64]bool
	n       uint64
}

func indexSet(idxs []uint64) map[uint64]bool {
	m := make(map[uint64]bool, len(idxs))
	for _, i := range idxs {
		m[i] = true
	}
	return m
}

// Chaos is a fault plan over the route table. Safe for concurrent use.
type Chaos struct {
	mu    sync.Mutex
	rules []*ruleState
	// Sleep substitutes the latency sleeper (nil = time.Sleep), so
	// latency plans don't wall-block deterministic tests.
	Sleep func(time.Duration)
}

// NewChaos compiles a fault plan.
func NewChaos(rules ...Rule) *Chaos {
	c := &Chaos{}
	for _, r := range rules {
		c.rules = append(c.rules, &ruleState{
			rule:    r,
			latency: indexSet(r.LatencyOps),
			fail:    indexSet(r.FailOps),
			drop:    indexSet(r.DropOps),
			trunc:   indexSet(r.TruncateOps),
		})
	}
	return c
}

func (c *Chaos) sleep(d time.Duration) {
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Wrap applies the plan around next. The first rule demanding a
// terminal action (fail, drop, truncate) wins; latency from every
// matching rule accumulates first.
func (c *Chaos) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for _, rs := range c.rules {
			if !strings.HasPrefix(r.URL.Path, rs.rule.PathPrefix) {
				continue
			}
			c.mu.Lock()
			rs.n++
			n := rs.n
			delay := rs.rule.Latency > 0 && (len(rs.latency) == 0 || rs.latency[n])
			failNow, dropNow, truncNow := rs.fail[n], rs.drop[n], rs.trunc[n]
			c.mu.Unlock()
			if delay {
				c.sleep(rs.rule.Latency)
			}
			switch {
			case failNow:
				status := rs.rule.FailStatus
				if status == 0 {
					status = http.StatusInternalServerError
				}
				if status == http.StatusServiceUnavailable {
					w.Header().Set("Retry-After", "1")
				}
				http.Error(w, "chaos: injected failure", status)
				return
			case dropNow:
				panic(http.ErrAbortHandler)
			case truncNow:
				budget := rs.rule.TruncateBytes
				if budget <= 0 {
					budget = 16
				}
				next.ServeHTTP(&truncWriter{ResponseWriter: w, budget: budget}, r)
				// Abort without the terminal chunk: the client sees a
				// short body and a transport error, never a clean EOF it
				// could mistake for a complete answer.
				panic(http.ErrAbortHandler)
			}
		}
		next.ServeHTTP(w, r)
	})
}

// truncWriter forwards only the first budget bytes of the response
// body, silently swallowing the rest so the handler runs to completion
// believing it answered.
type truncWriter struct {
	http.ResponseWriter
	budget int
}

func (t *truncWriter) Write(p []byte) (int, error) {
	if t.budget > 0 {
		k := len(p)
		if k > t.budget {
			k = t.budget
		}
		if _, err := t.ResponseWriter.Write(p[:k]); err != nil {
			return 0, err
		}
		t.budget -= k
	}
	return len(p), nil
}
