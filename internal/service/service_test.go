package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"fsdep/internal/core"
	"fsdep/internal/sched"
)

// The service-test ecosystem mirrors core's store fixture: a
// metadata-bridge pair plus an independent component, so incremental
// invalidation has both dependents and bystanders to discriminate.

const svcShared = "struct super { u32 s_field; };\n"

const svcReaderSrc = svcShared + `
struct ropts { long limit; };
int check(struct ropts *opts, struct super *sb) {
	if (opts->limit < 512) {
		return fail();
	}
	if (opts->limit > sb->s_field) {
		return fail();
	}
	return 0;
}`

func svcFixture() map[string]*core.Component {
	writer := &core.Component{Name: "writer", Source: svcShared + `
struct wopts { long v; };
void setup(struct wopts *opts, struct super *sb) {
	if (opts->v < 1024) {
		fail();
	}
	sb->s_field = opts->v;
}`, Params: []core.Param{{Name: "v", Var: "opts.v", CType: "int"}}}
	reader := &core.Component{Name: "reader", Source: svcReaderSrc,
		Params: []core.Param{{Name: "limit", Var: "opts.limit", CType: "int"}}}
	solo := &core.Component{Name: "solo", Source: `
struct sopts { long n; };
int validate(struct sopts *opts) {
	if (opts->n < 2 || opts->n > 64) {
		return fail();
	}
	return 0;
}`, Params: []core.Param{{Name: "n", Var: "opts.n", CType: "int"}}}
	return map[string]*core.Component{"writer": writer, "reader": reader, "solo": solo}
}

func svcScenarios() []core.Scenario {
	return []core.Scenario{
		{Name: "bridge", Components: []string{"writer", "reader"},
			Funcs: map[string][]string{"writer": {"setup"}, "reader": {"check"}}},
		{Name: "solo", Components: []string{"solo"},
			Funcs: map[string][]string{"solo": {"validate"}}},
		{Name: "all", Components: []string{"writer", "reader", "solo"},
			Funcs: map[string][]string{"writer": {"setup"}, "reader": {"check"}, "solo": {"validate"}}},
	}
}

// renderResults serializes per-scenario dependency sets exactly as the
// CLI's JSON path would — the structure-identity oracle this package's
// doc comment promises.
func renderResults(t *testing.T, results []*core.Result) string {
	t.Helper()
	var b strings.Builder
	for _, res := range results {
		blob, err := json.Marshal(res.Deps)
		if err != nil {
			t.Fatalf("marshal %s: %v", res.Scenario.Name, err)
		}
		fmt.Fprintf(&b, "%s: %s\n", res.Scenario.Name, blob)
	}
	return b.String()
}

func newAnalysisT(t *testing.T) *Analysis {
	t.Helper()
	a, err := New(svcFixture(), svcScenarios(), core.Options{}, sched.Sequential())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestAnalysisMatchesBatchRun pins the service's core promise: the
// daemon's answers are identical to the batch CLI path over the same
// sources.
func TestAnalysisMatchesBatchRun(t *testing.T) {
	a := newAnalysisT(t)
	got, err := a.Results()
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.AnalyzeAll(svcFixture(), svcScenarios(), core.Options{}, sched.Sequential())
	if err != nil {
		t.Fatal(err)
	}
	if renderResults(t, got) != renderResults(t, want) {
		t.Errorf("service results differ from batch run:\nwant %s\ngot  %s",
			renderResults(t, want), renderResults(t, got))
	}
	res, err := a.Scenario("bridge")
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario.Name != "bridge" {
		t.Errorf("Scenario returned %q", res.Scenario.Name)
	}
	if _, err := a.Scenario("ghost"); !errors.Is(err, ErrUnknownScenario) {
		t.Errorf("unknown scenario error = %v", err)
	}
	union, err := a.Union()
	if err != nil {
		t.Fatal(err)
	}
	if union.Len() == 0 {
		t.Error("union extraction is empty; the fixture proves nothing")
	}
	if comps := a.Components(); !reflect.DeepEqual(comps, []string{"reader", "solo", "writer"}) {
		t.Errorf("components = %v", comps)
	}
}

// TestUploadIncrementalMatchesFromScratch is the acceptance-criteria
// path: upload one edited component, re-query, and the answers must
// match a from-scratch strict run over the edited corpus.
func TestUploadIncrementalMatchesFromScratch(t *testing.T) {
	a := newAnalysisT(t)
	before, err := a.Results()
	if err != nil {
		t.Fatal(err)
	}
	beforeRender := renderResults(t, before)

	editedSrc := strings.Replace(svcReaderSrc, "512", "2048", 1)
	inv, err := a.Upload("reader", editedSrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"bridge", "all"}; !reflect.DeepEqual(inv.StaleScenarios, want) {
		t.Errorf("stale scenarios = %v, want %v", inv.StaleScenarios, want)
	}
	if want := []string{"writer"}; !reflect.DeepEqual(inv.Dependents, want) {
		t.Errorf("dependents = %v, want %v", inv.Dependents, want)
	}

	after, err := a.Results()
	if err != nil {
		t.Fatal(err)
	}
	if renderResults(t, after) == beforeRender {
		t.Error("upload did not change the extraction; the test proves nothing")
	}

	fresh := svcFixture()
	fresh["reader"] = &core.Component{Name: "reader", Source: editedSrc,
		Params: []core.Param{{Name: "limit", Var: "opts.limit", CType: "int"}}}
	scratch, err := core.AnalyzeAll(fresh, svcScenarios(), core.Options{}, sched.Sequential())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderResults(t, after), renderResults(t, scratch); got != want {
		t.Errorf("post-upload results differ from from-scratch run:\nwant %s\ngot  %s", want, got)
	}
	if st := a.StatsSnapshot(); st.Generation != 1 || !st.Ran {
		t.Errorf("stats = %+v, want generation 1", st)
	}
}

// TestUploadRejectionsLeaveSessionUntouched: unknown names 404, broken
// sources 422, and neither perturbs the analysis.
func TestUploadRejectionsLeaveSessionUntouched(t *testing.T) {
	a := newAnalysisT(t)
	before, err := a.Results()
	if err != nil {
		t.Fatal(err)
	}
	want := renderResults(t, before)

	if _, err := a.Upload("ghost", "int f() { return 0; }", nil); !errors.Is(err, ErrUnknownComponent) {
		t.Errorf("unknown component error = %v", err)
	}
	if _, err := a.Upload("reader", "int f( {", nil); !errors.Is(err, ErrBadSource) {
		t.Errorf("broken source error = %v", err)
	}
	after, err := a.Results()
	if err != nil {
		t.Fatal(err)
	}
	if got := renderResults(t, after); got != want {
		t.Errorf("rejected upload changed the results:\nwant %s\ngot  %s", want, got)
	}
	if st := a.StatsSnapshot(); st.Generation != 0 {
		t.Errorf("rejected upload bumped the generation: %+v", st)
	}
}

// TestConcurrentUploadAndQueries is the single-writer/multi-reader
// contract under -race: queries racing uploads must each observe one
// coherent generation — exactly the pre-edit or post-edit rendering,
// never a torn mix.
func TestConcurrentUploadAndQueries(t *testing.T) {
	a, err := New(svcFixture(), svcScenarios(), core.Options{}, sched.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	r0, err := a.Results()
	if err != nil {
		t.Fatal(err)
	}
	oldWant := renderResults(t, r0)

	editedSrc := strings.Replace(svcReaderSrc, "512", "2048", 1)
	fresh := svcFixture()
	fresh["reader"] = &core.Component{Name: "reader", Source: editedSrc,
		Params: []core.Param{{Name: "limit", Var: "opts.limit", CType: "int"}}}
	scratch, err := core.AnalyzeAll(fresh, svcScenarios(), core.Options{}, sched.Sequential())
	if err != nil {
		t.Fatal(err)
	}
	newWant := renderResults(t, scratch)

	const readers = 4
	const queriesEach = 20
	var wg sync.WaitGroup
	errs := make(chan string, readers*queriesEach)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queriesEach; i++ {
				res, err := a.Results()
				if err != nil {
					errs <- fmt.Sprintf("query: %v", err)
					return
				}
				if got := renderResults(t, res); got != oldWant && got != newWant {
					errs <- fmt.Sprintf("torn generation observed:\n%s", got)
					return
				}
				if _, err := a.Scenario("solo"); err != nil {
					errs <- fmt.Sprintf("scenario query: %v", err)
					return
				}
				a.StatsSnapshot()
			}
		}()
	}
	// Writer: flip the reader component back and forth while the queries
	// run.
	sources := []string{editedSrc, svcReaderSrc, editedSrc}
	for _, src := range sources {
		if _, err := a.Upload("reader", src, nil); err != nil {
			t.Fatalf("upload: %v", err)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	final, err := a.Results()
	if err != nil {
		t.Fatal(err)
	}
	if got := renderResults(t, final); got != newWant {
		t.Errorf("final generation differs from from-scratch run over the last upload:\nwant %s\ngot  %s", newWant, got)
	}
}

// TestViolationsCachedPerGeneration: the ConHandleCk report is computed
// once per analysis generation and recomputed after an upload.
func TestViolationsCachedPerGeneration(t *testing.T) {
	a := newAnalysisT(t)
	r1, err := a.Violations()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Violations()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("violation report recomputed without an upload")
	}
	editedSrc := strings.Replace(svcReaderSrc, "512", "2048", 1)
	if _, err := a.Upload("reader", editedSrc, nil); err != nil {
		t.Fatal(err)
	}
	r3, err := a.Violations()
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("violation report not refreshed after an upload")
	}
}

// TestDegradedRun: the fail-open path over the current bindings works
// and does not disturb the strict results.
func TestDegradedRun(t *testing.T) {
	a := newAnalysisT(t)
	run, err := a.Degraded()
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Degradations) != 0 {
		t.Errorf("healthy fixture produced degradations: %v", run.Degradations)
	}
	if len(run.Results) != len(svcScenarios()) {
		t.Errorf("degraded run covered %d scenarios", len(run.Results))
	}
}
