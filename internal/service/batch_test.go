// Chaos contract tests for the bulk store protocol: every way a batch
// transfer can go wrong — mid-stream truncation, a corrupted frame,
// compressed garbage, an open breaker, a daemon that predates the
// protocol — must yield a clean client-side refusal with zero records
// admitted to any tier, and the per-record fallback must stay
// byte-identical to the batch path.

package service

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fsdep/internal/depstore"
	"fsdep/internal/depstore/remote"
)

// batchFixture seeds n distinct records (valid refs, compressible
// payloads) and returns their refs in order.
func batchFixture(n int) ([]depstore.BatchRecord, []depstore.Ref) {
	recs := make([]depstore.BatchRecord, n)
	refs := make([]depstore.Ref, n)
	for i := range recs {
		ref := depstore.Ref{
			Kind: depstore.KindTaint,
			Key:  depstore.Key(fmt.Sprintf("batch-fixture-%d", i)),
		}
		payload := []byte(strings.Repeat(fmt.Sprintf(`{"rec":%d,"deps":["a","b"]}`, i), 20))
		recs[i] = depstore.BatchRecord{Ref: ref, Payload: payload}
		refs[i] = ref
	}
	return recs, refs
}

func TestBatchRoundTrip(t *testing.T) {
	_, store, ts := newServerT(t)
	c := remote.New(ts.URL)
	recs, refs := batchFixture(5)

	if !c.BatchPut(recs) {
		t.Fatal("BatchPut against a batch-capable daemon failed")
	}
	for _, rec := range recs {
		got, ok := store.Get(rec.Kind, rec.Key)
		if !ok || !bytes.Equal(got, rec.Payload) {
			t.Fatalf("server store missing or wrong payload for %s/%s", rec.Kind, rec.Key)
		}
	}

	// Ask for every stored ref plus one the server does not have: the
	// answer must cover all of them, the miss as an explicit absence.
	missing := depstore.Ref{Kind: depstore.KindTaint, Key: depstore.Key("never-stored")}
	got, ok := c.BatchGet(append(append([]depstore.Ref{}, refs...), missing))
	if !ok {
		t.Fatal("BatchGet against a batch-capable daemon failed")
	}
	if len(got) != len(recs) {
		t.Fatalf("BatchGet returned %d records, want %d", len(got), len(recs))
	}
	for _, rec := range recs {
		if !bytes.Equal(got[rec.Ref], rec.Payload) {
			t.Fatalf("BatchGet payload mismatch for %s/%s", rec.Kind, rec.Key)
		}
	}
	if _, have := got[missing]; have {
		t.Fatal("BatchGet fabricated a record for a ref the server never had")
	}

	bs := c.Stats()
	// The client counts wire frames, and the explicit-absence frame for
	// the missing ref is one of them.
	wantFrames := uint64(2*len(recs) + 1)
	if bs.Batches != 2 || bs.BatchRecords != wantFrames {
		t.Fatalf("client batch stats = %d batches / %d records, want 2 / %d", bs.Batches, bs.BatchRecords, wantFrames)
	}
	if bs.RoundTrips != 2 {
		t.Fatalf("two bulk transfers took %d round trips, want 2", bs.RoundTrips)
	}
	if bs.RawBytes == 0 || bs.WireBytes == 0 || bs.WireBytes >= bs.RawBytes {
		t.Fatalf("compression stats raw=%d wire=%d: want 0 < wire < raw for repetitive payloads", bs.RawBytes, bs.WireBytes)
	}

	var st statsResponse
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if st.Service.BatchGets != 1 || st.Service.BatchPuts != 1 {
		t.Fatalf("service stats = %d batch gets / %d batch puts, want 1 / 1", st.Service.BatchGets, st.Service.BatchPuts)
	}
	if st.Service.BatchRecords != uint64(2*len(recs)) {
		t.Fatalf("service batch records = %d, want %d", st.Service.BatchRecords, 2*len(recs))
	}
	if st.Service.BatchWireBytes == 0 || st.Service.BatchWireBytes >= st.Service.BatchRawBytes {
		t.Fatalf("service compression stats raw=%d wire=%d", st.Service.BatchRawBytes, st.Service.BatchWireBytes)
	}
}

func TestPrefetchWarmsEveryTier(t *testing.T) {
	_, store, ts := newServerT(t)
	recs, refs := batchFixture(4)
	for _, rec := range recs {
		if err := store.Put(rec.Kind, rec.Key, rec.Payload); err != nil {
			t.Fatal(err)
		}
	}

	c := remote.New(ts.URL)
	local, err := depstore.OpenWith(depstore.Options{Dir: t.TempDir(), Remote: c, HotRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	local.Prefetch(refs)
	if got := local.Stats().Prefetched; got != uint64(len(refs)) {
		t.Fatalf("prefetched %d records, want %d", got, len(refs))
	}
	rt := c.Stats().RoundTrips
	if rt != 1 {
		t.Fatalf("prefetch took %d round trips, want 1", rt)
	}
	// Every subsequent Get is answered in-process: no new round trips.
	for _, rec := range recs {
		got, ok := local.Get(rec.Kind, rec.Key)
		if !ok || !bytes.Equal(got, rec.Payload) {
			t.Fatalf("post-prefetch Get missed %s/%s", rec.Kind, rec.Key)
		}
	}
	if got := c.Stats().RoundTrips; got != rt {
		t.Fatalf("warm Gets paid %d extra round trips", got-rt)
	}
	if hot := local.Stats().HotHits; hot != uint64(len(recs)) {
		t.Fatalf("hot tier answered %d of %d warm Gets", hot, len(recs))
	}
}

// mangleBatchGet wraps a service handler, rewriting successful
// batch-get response bodies through mangle (headers pass through, so
// the gzip negotiation stays honest).
func mangleBatchGet(inner http.Handler, mangle func([]byte) []byte) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/store/batch-get" {
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			for k, vs := range rec.Header() {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			// The body is rewritten, so the recorded length is wrong.
			w.Header().Del("Content-Length")
			w.WriteHeader(rec.Code)
			w.Write(mangle(rec.Body.Bytes()))
			return
		}
		inner.ServeHTTP(w, r)
	})
}

// assertBatchRefused drives a prefetch against a mangled daemon and
// asserts the full contract: BatchGet refuses, nothing is admitted to
// the local tier, and the breaker records a healthy exchange (payload
// damage is not daemon death).
func assertBatchRefused(t *testing.T, name string, mangle func([]byte) []byte) {
	t.Helper()
	_, store, _ := newServerT(t)
	recs, refs := batchFixture(4)
	for _, rec := range recs {
		if err := store.Put(rec.Kind, rec.Key, rec.Payload); err != nil {
			t.Fatal(err)
		}
	}
	mts := httptest.NewServer(mangleBatchGet(NewServer(nil, store, nil, "test").Handler(), mangle))
	defer mts.Close()

	c := remote.New(mts.URL)
	local, err := depstore.OpenWith(depstore.Options{Dir: t.TempDir(), Remote: c, HotRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.BatchGet(refs); ok {
		t.Fatalf("%s: BatchGet accepted a damaged stream", name)
	}
	local.Prefetch(refs)
	st := local.Stats()
	if st.Prefetched != 0 || st.Writes != 0 {
		t.Fatalf("%s: damaged batch admitted records (prefetched=%d writes=%d)", name, st.Prefetched, st.Writes)
	}
	bs := c.Stats()
	if bs.State != "closed" {
		t.Fatalf("%s: payload damage tripped the breaker to %s", name, bs.State)
	}
	if bs.Batches != 0 {
		t.Fatalf("%s: refused transfers counted as completed batches", name)
	}
	// The per-record path through the same store still answers — the
	// degraded mode is slower, never wrong.
	got, ok := local.Get(recs[0].Kind, recs[0].Key)
	if !ok || !bytes.Equal(got, recs[0].Payload) {
		t.Fatalf("%s: per-record fallback failed after batch refusal", name)
	}
}

func TestBatchGetTruncationRefused(t *testing.T) {
	assertBatchRefused(t, "truncation", func(b []byte) []byte { return b[:len(b)/2] })
}

func TestBatchGetCorruptionRefused(t *testing.T) {
	assertBatchRefused(t, "corruption", func(b []byte) []byte {
		mut := append([]byte(nil), b...)
		mut[len(mut)/2] ^= 0xff
		return mut
	})
}

func TestBatchGetGzipGarbageRefused(t *testing.T) {
	// Keep the gzip Content-Encoding header but replace the body with
	// bytes that are not a gzip stream at all.
	assertBatchRefused(t, "gzip-garbage", func([]byte) []byte {
		return []byte("this is not a gzip stream, sorry about that")
	})
}

func TestBatchShortCircuitsOpenBreaker(t *testing.T) {
	// A server that always 500s: one failed request opens the
	// threshold-1 breaker, and with an hour's cooldown it stays open.
	fails := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer fails.Close()
	c := remote.NewWithConfig(fails.URL, remote.Config{
		MaxRetries: -1,
		Threshold:  1,
		Cooldown:   time.Hour,
	})
	if _, ok := c.Get(depstore.KindTaint, depstore.Key("trip")); ok {
		t.Fatal("Get against a 500ing server succeeded")
	}
	if c.Stats().State != "open" {
		t.Fatalf("breaker %s after threshold failures, want open", c.Stats().State)
	}
	rt := c.Stats().RoundTrips
	recs, refs := batchFixture(2)
	if _, ok := c.BatchGet(refs); ok {
		t.Fatal("BatchGet through an open breaker succeeded")
	}
	if c.BatchPut(recs) {
		t.Fatal("BatchPut through an open breaker succeeded")
	}
	if got := c.Stats().RoundTrips; got != rt {
		t.Fatalf("open breaker let %d batch round trips through", got-rt)
	}
}

// legacyHandler emulates a daemon built before the batch endpoints: the
// per-record surface answers, the batch routes 404.
func legacyHandler(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/store/batch-") {
			http.NotFound(w, r)
			return
		}
		inner.ServeHTTP(w, r)
	})
}

// TestMixedVersionFallback proves a new client against a batch-less
// daemon degrades silently to per-record traffic with byte-identical
// results, and latches so later bulk calls cost no wasted round trips.
func TestMixedVersionFallback(t *testing.T) {
	recs, refs := batchFixture(3)

	run := func(t *testing.T, url string) map[depstore.Ref][]byte {
		c := remote.New(url)
		local, err := depstore.OpenWith(depstore.Options{Dir: t.TempDir(), Remote: c, HotRecords: 8})
		if err != nil {
			t.Fatal(err)
		}
		local.Prefetch(refs)
		out := make(map[depstore.Ref][]byte, len(refs))
		for _, ref := range refs {
			if payload, ok := local.Get(ref.Kind, ref.Key); ok {
				out[ref] = payload
			}
		}
		// Write one new record through the tiered store and flush: the
		// modern path batches it, the legacy path falls back per-record.
		extra := depstore.BatchRecord{
			Ref:     depstore.Ref{Kind: depstore.KindScenario, Key: depstore.Key("mixed-extra")},
			Payload: []byte(`{"fresh":true}`),
		}
		if err := local.Put(extra.Kind, extra.Key, extra.Payload); err != nil {
			t.Fatal(err)
		}
		local.FlushRemote()
		out[extra.Ref] = extra.Payload
		return out
	}

	seed := func(t *testing.T, store *depstore.Store) {
		for _, rec := range recs {
			if err := store.Put(rec.Kind, rec.Key, rec.Payload); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Modern daemon.
	_, modernStore, modernTS := newServerT(t)
	seed(t, modernStore)
	modernOut := run(t, modernTS.URL)

	// Legacy daemon over its own identical store.
	legacyStore, err := depstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seed(t, legacyStore)
	lts := httptest.NewServer(legacyHandler(NewServer(nil, legacyStore, nil, "test").Handler()))
	defer lts.Close()
	legacyOut := run(t, lts.URL)

	if len(modernOut) != len(legacyOut) {
		t.Fatalf("modern served %d records, legacy %d", len(modernOut), len(legacyOut))
	}
	for ref, want := range modernOut {
		if !bytes.Equal(legacyOut[ref], want) {
			t.Fatalf("fallback payload differs for %s/%s", ref.Kind, ref.Key)
		}
	}
	// Both daemons ended up owning the freshly written record.
	extraKey := depstore.Key("mixed-extra")
	mp, mok := modernStore.Get(depstore.KindScenario, extraKey)
	lp, lok := legacyStore.Get(depstore.KindScenario, extraKey)
	if !mok || !lok || !bytes.Equal(mp, lp) {
		t.Fatal("flushed record did not reach both daemons identically")
	}

	// The latch: a second bulk call against the legacy daemon must not
	// even attempt HTTP.
	c := remote.New(lts.URL)
	if _, ok := c.BatchGet(refs); ok {
		t.Fatal("BatchGet against a legacy daemon succeeded")
	}
	rt := c.Stats().RoundTrips
	if _, ok := c.BatchGet(refs); ok {
		t.Fatal("latched BatchGet succeeded")
	}
	if got := c.Stats().RoundTrips; got != rt {
		t.Fatal("latched client still paid an HTTP round trip for a batch call")
	}
}
