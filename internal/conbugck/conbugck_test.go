package conbugck

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"fsdep/internal/checkpoint"
	"fsdep/internal/core"
	"fsdep/internal/corpus"
	"fsdep/internal/depmodel"
	"fsdep/internal/sched"
	"fsdep/internal/testsuite"
)

func extractedDeps(t *testing.T) *depmodel.Set {
	t.Helper()
	comps := corpus.Components()
	union := depmodel.NewSet()
	for _, sc := range corpus.Scenarios() {
		res, err := core.Analyze(comps, sc, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		union.AddAll(res.Deps.Deps())
	}
	return union
}

func TestGeneratedConfigsPassValidation(t *testing.T) {
	// The whole point of ConBugCk: dependency-respecting configs
	// never die on shallow validation, so the workload drives deep.
	g := NewGenerator(extractedDeps(t), 42)
	cfgs := g.Plan(20)
	if len(cfgs) != 20 {
		t.Fatalf("planned %d configs", len(cfgs))
	}
	rep := Execute(cfgs)
	if rep.Shallow != 0 {
		for _, r := range rep.Results {
			if r.ShallowReject {
				t.Logf("shallow reject: %s: %v", r.Config.Label, r.Err)
			}
		}
		t.Fatalf("shallow rejections = %d, want 0", rep.Shallow)
	}
	if rep.Deep != 0 {
		for _, r := range rep.Results {
			if r.DeepFailure {
				t.Logf("deep failure: %s: %v", r.Config.Label, r.Err)
			}
		}
		t.Fatalf("deep failures = %d, want 0 on the fixed ecosystem", rep.Deep)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	deps := extractedDeps(t)
	a := NewGenerator(deps, 7).Plan(10)
	b := NewGenerator(deps, 7).Plan(10)
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatalf("config %d differs for same seed: %q vs %q", i, a[i].Label, b[i].Label)
		}
	}
	c := NewGenerator(deps, 8).Plan(10)
	same := true
	for i := range a {
		if a[i].Label != c[i].Label {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical plans")
	}
}

func TestRangeOfUsesExtractedBounds(t *testing.T) {
	deps := depmodel.NewSet()
	min, max := int64(2048), int64(8192)
	deps.Add(depmodel.Dependency{
		Kind:       depmodel.SDValueRange,
		Source:     depmodel.ParamRef{Component: "mke2fs", Param: "blocksize"},
		Constraint: depmodel.Constraint{Min: &min, Max: &max},
	})
	g := NewGenerator(deps, 1)
	lo, hi := g.rangeOf("mke2fs", "blocksize", 1024, 65536)
	if lo != 2048 || hi != 8192 {
		t.Errorf("range = [%d,%d], want [2048,8192]", lo, hi)
	}
	lo, hi = g.rangeOf("mke2fs", "unknown", 1, 9)
	if lo != 1 || hi != 9 {
		t.Errorf("fallback range = [%d,%d]", lo, hi)
	}
}

func TestCoverageGainOverXfstest(t *testing.T) {
	g := NewGenerator(extractedDeps(t), 42)
	rep := Execute(g.Plan(20))
	baseline := testsuite.Xfstest().UsedParams()
	base, enhanced, newParams := rep.CoverageGain(baseline)
	if base != len(baseline) {
		t.Errorf("baseline count = %d", base)
	}
	if enhanced <= base {
		t.Errorf("no coverage gain: %d -> %d (new: %v)", base, enhanced, newParams)
	}
	if len(newParams) == 0 {
		t.Error("no new parameters exercised")
	}
}

func TestConfigsRespectConflicts(t *testing.T) {
	// No generated config may enable both meta_bg and resize_inode.
	g := NewGenerator(extractedDeps(t), 3)
	for _, cfg := range g.Plan(50) {
		hasMetaBG, clearsResize := false, false
		for _, f := range cfg.Mkfs.Features {
			if f == "meta_bg" {
				hasMetaBG = true
			}
			if f == "^resize_inode" {
				clearsResize = true
			}
		}
		if hasMetaBG && !clearsResize {
			t.Errorf("config enables meta_bg without clearing resize_inode: %v",
				cfg.Mkfs.Features)
		}
	}
}

// renderReport serializes everything cmd/conbugck derives from a
// report, for byte-level comparison across resumed runs.
func renderReport(rep *Report) string {
	var b strings.Builder
	for _, r := range rep.Results {
		errStr := ""
		if r.Err != nil {
			errStr = r.Err.Error()
		}
		fmt.Fprintf(&b, "%s|%v|%v|%s\n", r.Config.Label, r.ShallowReject, r.DeepFailure, errStr)
	}
	fmt.Fprintf(&b, "shallow:%d deep:%d\n", rep.Shallow, rep.Deep)
	touched := make([]string, 0, len(rep.ParamsTouched))
	for p := range rep.ParamsTouched {
		touched = append(touched, p)
	}
	sort.Strings(touched)
	fmt.Fprintf(&b, "touched:%v\n", touched)
	return b.String()
}

func TestExecuteCheckpointResumeByteIdentical(t *testing.T) {
	cfgs := NewGenerator(extractedDeps(t), 42).Plan(12)
	sopts := sched.Options{Workers: 4}
	want := renderReport(ExecuteParallel(cfgs, sopts))

	path := filepath.Join(t.TempDir(), "chk.jsonl")
	j, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ExecuteCheckpointed(cfgs, sopts, j)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderReport(rep); got != want {
		t.Fatalf("checkpointed run differs from plain run:\n%s\nvs\n%s", got, want)
	}
	replayed, recorded := j.Stats()
	if replayed != 0 || recorded != len(cfgs) {
		t.Fatalf("stats = %d replayed / %d recorded, want 0/%d", replayed, recorded, len(cfgs))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Kill mid-sweep: keep half the journal plus a torn fragment, then
	// resume and demand byte-identity.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	keep := len(cfgs) / 2
	cut := bytes.Join(lines[:keep], nil)
	cut = append(cut, lines[keep][:len(lines[keep])/2]...)
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rep2, err := ExecuteCheckpointed(cfgs, sopts, j2)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderReport(rep2); got != want {
		t.Fatalf("resumed run differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
	replayed, recorded = j2.Stats()
	if replayed != keep {
		t.Errorf("resume replayed %d trials, want %d", replayed, keep)
	}
	if replayed+recorded != len(cfgs) {
		t.Errorf("replayed %d + recorded %d != %d configs", replayed, recorded, len(cfgs))
	}
}
