// Package conbugck implements ConBugCk (§4.2): a plugin that replaces
// a test suite's configuration loading and manipulates configurations
// *without violating* the extracted dependencies, so the enhanced
// tests drive deep into the target code under many configuration
// states instead of crashing early on shallow validation errors.
//
// The generator enumerates configuration states from the extracted
// dependency set: numeric parameters sample their extracted valid
// ranges, feature parameters enumerate combinations filtered through
// the extracted cross-parameter constraints. Every generated
// configuration is executed against the simulated ecosystem
// (mkfs → mount → workload → unmount → fsck -f) and the run verifies
// it got past validation.
package conbugck

import (
	"errors"
	"fmt"
	"sort"

	"fsdep/internal/checkpoint"
	"fsdep/internal/depmodel"
	"fsdep/internal/e2fsck"
	"fsdep/internal/fsim"
	"fsdep/internal/mke2fs"
	"fsdep/internal/mountsim"
	"fsdep/internal/prng"
	"fsdep/internal/sched"
)

// Config is one generated configuration state.
type Config struct {
	// Mkfs holds the creation parameters.
	Mkfs mke2fs.Params
	// Mount holds the mount options.
	Mount mountsim.Options
	// Label describes the state for reports.
	Label string
}

// Generator produces dependency-respecting configurations.
type Generator struct {
	deps *depmodel.Set
	// rng is the shared deterministic generator; runs are reproducible
	// for a given seed.
	rng *prng.Source
}

// NewGenerator builds a generator over the extracted dependencies.
func NewGenerator(deps *depmodel.Set, seed uint64) *Generator {
	return &Generator{deps: deps, rng: prng.New(seed)}
}

// rangeOf returns the extracted valid range for a parameter, with
// fallbacks when only one bound was extracted.
func (g *Generator) rangeOf(comp, param string, defMin, defMax int64) (int64, int64) {
	for _, d := range g.deps.Deps() {
		if d.Kind != depmodel.SDValueRange || d.Source.Component != comp || d.Source.Param != param {
			continue
		}
		min, max := defMin, defMax
		if d.Constraint.Min != nil {
			min = *d.Constraint.Min
		}
		if d.Constraint.Max != nil {
			max = *d.Constraint.Max
		}
		return min, max
	}
	return defMin, defMax
}

// conflictsWith reports whether enabling both features violates an
// extracted cross-parameter control dependency of the "conflicts"
// shape (heuristically: any CPD control between the two).
func (g *Generator) related(comp, p1, p2 string) bool {
	for _, d := range g.deps.Deps() {
		if d.Kind != depmodel.CPDControl || d.Source.Component != comp {
			continue
		}
		a, b := d.Source.Param, d.Target.Param
		if (a == p1 && b == p2) || (a == p2 && b == p1) {
			return true
		}
	}
	return false
}

// featureSets enumerates dependency-respecting feature combinations.
// Base features stay on; each optional feature set is checked against
// the extracted constraints via the runtime validator, which encodes
// the same rules the dependencies describe.
func (g *Generator) featureSets(n int) [][]string {
	optional := [][]string{
		{},
		{"sparse_super2"},
		{"meta_bg", "^resize_inode"},
		{"bigalloc"},
		{"inline_data"},
		{"has_journal"},
		{"64bit"},
		{"sparse_super2", "has_journal"},
		{"bigalloc", "inline_data"},
		{"meta_bg", "^resize_inode", "64bit"},
	}
	var out [][]string
	for i := 0; len(out) < n && i < 4*n; i++ {
		out = append(out, prng.Pick(g.rng, optional))
	}
	return out
}

// Plan generates n configurations that satisfy every extracted
// dependency.
func (g *Generator) Plan(n int) []Config {
	blockSizes := []uint32{1024, 2048, 4096}
	var cfgs []Config
	bsMin, bsMax := g.rangeOf("mke2fs", "blocksize", fsim.MinBlockSize, fsim.MaxBlockSize)
	for _, feats := range g.featureSets(n) {
		bs := prng.Pick(g.rng, blockSizes)
		if int64(bs) < bsMin || int64(bs) > bsMax {
			bs = uint32(bsMin)
		}
		rpMin, rpMax := g.rangeOf("mke2fs", "reserved_percent", 0, 50)
		rp := int(rpMin + int64(g.rng.Next())%(rpMax-rpMin+1))
		p := mke2fs.Params{
			BlockSize:       bs,
			ReservedPercent: rp,
			Features:        feats,
			Label:           fmt.Sprintf("cbk-%d", len(cfgs)),
		}
		mo := mountsim.Options{}
		hasJournal := false
		for _, f := range feats {
			if f == "has_journal" {
				hasJournal = true
			}
		}
		if hasJournal {
			mo.Data = prng.Pick(g.rng, []string{"ordered", "writeback", "journal"})
		}
		cfgs = append(cfgs, Config{
			Mkfs: p, Mount: mo,
			Label: fmt.Sprintf("bs=%d rp=%d feats=%v mount=%+q", bs, rp, feats, mo.Data),
		})
	}
	return cfgs
}

// RunResult is the outcome of executing one configuration.
type RunResult struct {
	Config Config
	// ShallowReject marks configurations the validators refused —
	// the generator's job is to make these zero.
	ShallowReject bool
	// DeepFailure marks runs that failed after validation (real bug
	// territory).
	DeepFailure bool
	// Err carries the failure.
	Err error
}

// Report summarizes an enhanced-suite run.
type Report struct {
	Results []RunResult
	// Shallow and Deep count rejects and post-validation failures.
	Shallow, Deep int
	// ParamsTouched is the set of parameters the run exercised.
	ParamsTouched map[string]bool
}

// Execute runs every configuration through the full pipeline.
func Execute(cfgs []Config) *Report { return ExecuteParallel(cfgs, sched.Sequential()) }

// ExecuteParallel runs the configurations concurrently, bounded by
// sopts. Each configuration drives its own fsim pipeline and records
// coverage into a private map; results and coverage merge in plan
// order, so the report is identical to a sequential Execute.
func ExecuteParallel(cfgs []Config, sopts sched.Options) *Report {
	rep, _ := ExecuteCheckpointed(cfgs, sopts, nil)
	return rep
}

// trialRecord is the journal-safe form of one executed configuration:
// RunResult carries an error value, which does not round-trip through
// JSON, so the journal stores its message instead.
type trialRecord struct {
	Shallow bool     `json:"shallow,omitempty"`
	Deep    bool     `json:"deep,omitempty"`
	Err     string   `json:"err,omitempty"`
	Touched []string `json:"touched,omitempty"`
}

// ExecuteCheckpointed is ExecuteParallel with an optional resume
// journal: journaled configurations replay instead of re-executing,
// fresh ones are journaled as they finish. The plan is deterministic
// for a given dependency set and seed, so a killed-and-resumed run
// yields a report byte-identical to an uninterrupted one. A nil
// journal behaves exactly like ExecuteParallel.
func ExecuteCheckpointed(cfgs []Config, sopts sched.Options, j *checkpoint.Journal) (*Report, error) {
	recs, err := sched.Map(sopts, cfgs, func(i int, cfg Config) (trialRecord, error) {
		// The label alone may collide across plan entries; the index
		// pins the record to its position in the enumeration.
		key := fmt.Sprintf("cbc1|%d|%s", i, cfg.Label)
		return checkpoint.Do(j, key, func() (trialRecord, error) {
			touched := make(map[string]bool)
			rec := trialRecord{}
			if err := runOne(cfg, touched); err != nil {
				var pe *mke2fs.ParamError
				var me *mountsim.MountError
				if asErr(err, &pe) || asErr(err, &me) {
					rec.Shallow = true
				} else {
					rec.Deep = true
				}
				rec.Err = err.Error()
			}
			for p := range touched {
				rec.Touched = append(rec.Touched, p)
			}
			sort.Strings(rec.Touched)
			return rec, nil
		})
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{ParamsTouched: make(map[string]bool)}
	for i, rec := range recs {
		res := RunResult{Config: cfgs[i], ShallowReject: rec.Shallow, DeepFailure: rec.Deep}
		if rec.Err != "" {
			res.Err = errors.New(rec.Err)
		}
		rep.Results = append(rep.Results, res)
		if rec.Shallow {
			rep.Shallow++
		}
		if rec.Deep {
			rep.Deep++
		}
		for _, p := range rec.Touched {
			rep.ParamsTouched[p] = true
		}
	}
	return rep, nil
}

func asErr[T error](err error, target *T) bool {
	for e := err; e != nil; {
		if t, ok := e.(T); ok {
			*target = t
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// runOne executes mkfs → mount → workload → unmount → fsck -f.
func runOne(cfg Config, touched map[string]bool) error {
	dev := fsim.GetDevice(16 << 20)
	defer fsim.PutDevice(dev)
	res, err := mke2fs.Run(dev, cfg.Mkfs)
	if err != nil {
		return err
	}
	touched["blocksize"] = true
	touched["reserved_percent"] = true
	touched["label"] = true
	for _, f := range res.EnabledFeatures {
		touched[f] = true
	}
	m, err := mountsim.Do(dev, cfg.Mount)
	if err != nil {
		return err
	}
	if cfg.Mount.Data != "" {
		touched["data"] = true
	}
	// Deep workload: directories, files, overwrite, delete.
	dir, err := m.Mkdir(fsim.RootIno, "work")
	if err != nil {
		return fmt.Errorf("workload mkdir: %w", err)
	}
	for i := 0; i < 8; i++ {
		f, err := m.Create(dir, fmt.Sprintf("f%02d", i))
		if err != nil {
			return fmt.Errorf("workload create: %w", err)
		}
		payload := make([]byte, 700*(i+1))
		for j := range payload {
			payload[j] = byte(i + j)
		}
		if err := m.Write(f, payload); err != nil {
			return fmt.Errorf("workload write: %w", err)
		}
	}
	if err := m.Unlink(dir, "f03"); err != nil {
		return fmt.Errorf("workload unlink: %w", err)
	}
	if err := m.Unmount(); err != nil {
		return err
	}
	ck, err := e2fsck.Run(dev, e2fsck.Options{Force: true, Yes: true})
	if err != nil {
		return fmt.Errorf("fsck: %w", err)
	}
	touched["force"] = true
	touched["yes"] = true
	if ck.ExitCode != e2fsck.ExitClean {
		return fmt.Errorf("fsck found problems after clean run: exit %d", ck.ExitCode)
	}
	return nil
}

// CoverageGain compares the enhanced run's parameter coverage against
// a baseline used-parameter list (e.g. the modeled xfstest suite).
func (r *Report) CoverageGain(baseline []string) (baseCount, enhancedCount int, newParams []string) {
	base := make(map[string]bool, len(baseline))
	for _, p := range baseline {
		base[p] = true
	}
	for p := range r.ParamsTouched {
		if !base[p] {
			newParams = append(newParams, p)
		}
	}
	sort.Strings(newParams)
	union := len(base)
	for p := range r.ParamsTouched {
		if !base[p] {
			union++
		}
	}
	return len(base), union, newParams
}
