package e4defrag

import (
	"bytes"
	"errors"
	"testing"

	"fsdep/internal/fsim"
	"fsdep/internal/mke2fs"
	"fsdep/internal/mountsim"
)

// fragmentedMount builds a mounted fs containing a deliberately
// fragmented file and returns the mount plus the file's inode.
func fragmentedMount(t *testing.T, features []string) (*mountsim.Mount, uint32) {
	t.Helper()
	dev := fsim.NewMemDevice(16 << 20)
	if _, err := mke2fs.Run(dev, mke2fs.Params{BlockSize: 1024, Features: features}); err != nil {
		t.Fatalf("mke2fs: %v", err)
	}
	m, err := mountsim.Do(dev, mountsim.Options{})
	if err != nil {
		t.Fatalf("mount: %v", err)
	}
	fs := m.Fs()
	// Build a fragmented file the way an aged fs would: allocate its
	// blocks one at a time with still-allocated spacers in between, so
	// the extents cannot be adjacent, then assemble the extent list.
	target, err := fs.CreateFile(fsim.RootIno, "fragmented")
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("F"), 3*1024)
	var dataExts, spacerExts []fsim.Extent
	for i := 0; i < 3; i++ {
		de, err := fs.AllocExtent(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		dataExts = append(dataExts, de)
		se, err := fs.AllocExtent(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		spacerExts = append(spacerExts, se)
	}
	bs := fs.SB.BlockSize()
	for i, e := range dataExts {
		blk := make([]byte, bs)
		copy(blk, content[uint32(i)*bs:])
		if err := fs.WriteBlock(e.Start, blk); err != nil {
			t.Fatal(err)
		}
	}
	in, err := fs.ReadInode(target)
	if err != nil {
		t.Fatal(err)
	}
	in.Flags |= fsim.FlagExtents
	in.ExtentCount = uint16(len(dataExts))
	copy(in.Extents[:], dataExts)
	in.Size = uint32(len(content))
	in.Blocks = uint32(len(dataExts))
	if err := fs.WriteInode(target, in); err != nil {
		t.Fatal(err)
	}
	// Release the spacers; the holes keep the target fragmented.
	for _, se := range spacerExts {
		if err := fs.FreeExtent(se); err != nil {
			t.Fatal(err)
		}
	}
	if in.ExtentCount < 2 {
		t.Fatalf("setup failed to fragment: %d extents", in.ExtentCount)
	}
	if probs := fs.Audit(); len(probs) != 0 {
		t.Fatalf("fragmented setup not clean: %v", probs)
	}
	return m, target
}

func TestDefragReducesExtents(t *testing.T) {
	m, target := fragmentedMount(t, nil)
	defer func() { _ = m.Unmount() }()
	before, _ := m.Fs().ReadInode(target)
	dataBefore, _ := m.Fs().ReadFile(target)

	rep, err := Run(m, Options{Verbose: true})
	if err != nil {
		t.Fatalf("e4defrag: %v", err)
	}
	after, _ := m.Fs().ReadInode(target)
	if after.ExtentCount >= before.ExtentCount {
		t.Errorf("extents %d -> %d, expected reduction", before.ExtentCount, after.ExtentCount)
	}
	if rep.ScoreAfter > rep.ScoreBefore {
		t.Errorf("score worsened: %f -> %f", rep.ScoreBefore, rep.ScoreAfter)
	}
	dataAfter, err := m.Fs().ReadFile(target)
	if err != nil || !bytes.Equal(dataBefore, dataAfter) {
		t.Fatalf("defrag corrupted data: %v", err)
	}
	if probs := m.Fs().Audit(); len(probs) != 0 {
		t.Fatalf("fs dirty after defrag: %v", probs)
	}
}

func TestDefragRequiresExtentFeature(t *testing.T) {
	// CCD: e4defrag's behaviour depends on mke2fs's extent feature.
	dev := fsim.NewMemDevice(8 << 20)
	if _, err := mke2fs.Run(dev, mke2fs.Params{BlockSize: 1024, Features: []string{"^extent"}}); err != nil {
		t.Fatalf("mke2fs: %v", err)
	}
	m, err := mountsim.Do(dev, mountsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Unmount() }()
	_, err = Run(m, Options{})
	var ue *UtilError
	if !errors.As(err, &ue) || ue.Related != "extent" {
		t.Fatalf("err = %v, want extent dependency", err)
	}
}

func TestDryRunMovesNothing(t *testing.T) {
	m, target := fragmentedMount(t, nil)
	defer func() { _ = m.Unmount() }()
	before, _ := m.Fs().ReadInode(target)
	rep, err := Run(m, Options{DryRun: true, Verbose: true})
	if err != nil {
		t.Fatal(err)
	}
	after, _ := m.Fs().ReadInode(target)
	if after.ExtentCount != before.ExtentCount {
		t.Errorf("dry run changed extents: %d -> %d", before.ExtentCount, after.ExtentCount)
	}
	for _, f := range rep.Files {
		if f.Moved {
			t.Errorf("dry run moved %s", f.Path)
		}
	}
}

func TestReadOnlyMountRefused(t *testing.T) {
	dev := fsim.NewMemDevice(8 << 20)
	if _, err := mke2fs.Run(dev, mke2fs.Params{BlockSize: 1024}); err != nil {
		t.Fatal(err)
	}
	m, err := mountsim.Do(dev, mountsim.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m, Options{}); err == nil {
		t.Fatal("defrag on ro mount succeeded")
	}
	// But a dry-run report is fine read-only.
	if _, err := Run(m, Options{DryRun: true}); err != nil {
		t.Fatalf("dry run on ro mount: %v", err)
	}
}

func TestContiguousFilesSkipped(t *testing.T) {
	dev := fsim.NewMemDevice(8 << 20)
	if _, err := mke2fs.Run(dev, mke2fs.Params{BlockSize: 1024}); err != nil {
		t.Fatal(err)
	}
	m, err := mountsim.Do(dev, mountsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Unmount() }()
	ino, _ := m.Create(fsim.RootIno, "contig")
	if err := m.Write(ino, bytes.Repeat([]byte{1}, 4096)); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(m, Options{Verbose: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Files {
		if f.Ino == ino && f.Skipped != "already contiguous" {
			t.Errorf("contiguous file report = %+v", f)
		}
	}
}
