// Package e4defrag simulates e4defrag(8), the online defragmenter of
// the Ext4 ecosystem. It operates through a mounted file system (the
// paper's "online" configuration stage) and carries the real tool's
// cross-component dependency: it only works on extent-mapped files,
// i.e. it depends on mke2fs having enabled the extent feature.
package e4defrag

import (
	"fmt"

	"fsdep/internal/fsim"
	"fsdep/internal/mountsim"
)

// Options is the e4defrag parameter surface.
type Options struct {
	// Verbose is -v (collect per-file detail).
	Verbose bool
	// DryRun is -c: report fragmentation without moving anything.
	DryRun bool
}

// FileReport describes one file's fragmentation before/after.
type FileReport struct {
	Ino           uint32
	Path          string
	ExtentsBefore int
	ExtentsAfter  int
	// Moved marks files whose blocks were relocated.
	Moved bool
	// Skipped carries the reason a file was left alone ("" if
	// processed).
	Skipped string
}

// Report summarizes a defrag run.
type Report struct {
	Files []FileReport
	// Score is the fragmentation score (mean extents per non-empty
	// file) before and after.
	ScoreBefore, ScoreAfter float64
}

// UtilError is an e4defrag rejection.
type UtilError struct {
	Option  string
	Related string
	Msg     string
}

// Error implements error.
func (e *UtilError) Error() string {
	if e.Related != "" {
		return fmt.Sprintf("e4defrag: %s/%s: %s", e.Option, e.Related, e.Msg)
	}
	return fmt.Sprintf("e4defrag: %s: %s", e.Option, e.Msg)
}

// Run defragments every regular file reachable from root on the
// mounted file system m.
func Run(m *mountsim.Mount, opts Options) (*Report, error) {
	if m.ReadOnly() && !opts.DryRun {
		return nil, &UtilError{Option: "device", Related: "ro",
			Msg: "cannot defragment a read-only mount"}
	}
	fs := m.Fs()
	if !fs.SB.HasIncompat(fsim.IncompatExtents) {
		// e4defrag: "file is not extents-based" — the whole fs
		// lacks the feature, so nothing is defragmentable.
		return nil, &UtilError{Option: "device", Related: "extent",
			Msg: "file system was created without the extent feature"}
	}
	rep := &Report{}
	var nBefore, nAfter, files int
	err := walk(fs, fsim.RootIno, "", func(ino uint32, path string, in *fsim.Inode) error {
		if !in.IsFile() || in.ExtentCount == 0 {
			return nil
		}
		fr := FileReport{Ino: ino, Path: path, ExtentsBefore: int(in.ExtentCount)}
		files++
		nBefore += int(in.ExtentCount)
		switch {
		case in.Flags&fsim.FlagInlineData != 0:
			fr.Skipped = "inline file"
			fr.ExtentsAfter = fr.ExtentsBefore
		case in.ExtentCount == 1:
			fr.Skipped = "already contiguous"
			fr.ExtentsAfter = 1
		case opts.DryRun:
			fr.Skipped = "dry run"
			fr.ExtentsAfter = fr.ExtentsBefore
		default:
			after, err := defragFile(fs, ino)
			if err != nil {
				fr.Skipped = err.Error()
				fr.ExtentsAfter = fr.ExtentsBefore
			} else {
				fr.ExtentsAfter = after
				fr.Moved = after < fr.ExtentsBefore
			}
		}
		nAfter += fr.ExtentsAfter
		if opts.Verbose || fr.Moved {
			rep.Files = append(rep.Files, fr)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if files > 0 {
		rep.ScoreBefore = float64(nBefore) / float64(files)
		rep.ScoreAfter = float64(nAfter) / float64(files)
	}
	return rep, nil
}

// defragFile rewrites one file into (ideally) a single extent using
// the donor-file strategy of the real tool: allocate fresh contiguous
// space, copy, swap, free the old blocks. Returns the new extent
// count.
func defragFile(fs *fsim.Fs, ino uint32) (int, error) {
	data, err := fs.ReadFile(ino)
	if err != nil {
		return 0, err
	}
	if err := fs.WriteFile(ino, data); err != nil {
		return 0, err
	}
	in, err := fs.ReadInode(ino)
	if err != nil {
		return 0, err
	}
	return int(in.ExtentCount), nil
}

// walk visits every inode reachable from dir, depth-first.
func walk(fs *fsim.Fs, dir uint32, prefix string, fn func(uint32, string, *fsim.Inode) error) error {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.Name == "." || e.Name == ".." {
			continue
		}
		in, err := fs.ReadInode(e.Ino)
		if err != nil {
			return err
		}
		path := prefix + "/" + e.Name
		if err := fn(e.Ino, path, in); err != nil {
			return err
		}
		if in.IsDir() {
			if err := walk(fs, e.Ino, path, fn); err != nil {
				return err
			}
		}
	}
	return nil
}
