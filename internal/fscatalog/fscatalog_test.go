package fscatalog

import "testing"

func TestCatalogMatchesTable1(t *testing.T) {
	entries := Catalog()
	if len(entries) != 8 {
		t.Fatalf("rows = %d, want 8", len(entries))
	}
	wantFS := []string{"Ext4", "XFS", "BtrFS", "UFS", "ZFS", "MINIX", "NTFS", "APFS"}
	for i, e := range entries {
		if e.FS != wantFS[i] {
			t.Errorf("row %d = %s, want %s", i, e.FS, wantFS[i])
		}
	}
}

func TestEveryFSHasCreateAndMount(t *testing.T) {
	for _, e := range Catalog() {
		if len(e.Utilities[StageCreate]) == 0 {
			t.Errorf("%s has no create utility", e.FS)
		}
		if len(e.Utilities[StageMount]) == 0 {
			t.Errorf("%s has no mount utility", e.FS)
		}
	}
}

func TestMinixHasNoOnlineUtility(t *testing.T) {
	m := Lookup("MINIX")
	if m == nil {
		t.Fatal("MINIX missing")
	}
	if len(m.Utilities[StageOnline]) != 0 {
		t.Errorf("MINIX online utilities = %v, want none (the table's '-')", m.Utilities[StageOnline])
	}
}

func TestEveryFSIsMultiStage(t *testing.T) {
	// The paper's point: the modular multi-stage design is universal.
	for _, e := range Catalog() {
		if !e.MultiStage() {
			t.Errorf("%s is not configurable at multiple stages", e.FS)
		}
	}
}

func TestExt4RowMatchesPaper(t *testing.T) {
	e := Lookup("Ext4")
	if e == nil || e.OS != "Linux" {
		t.Fatalf("Ext4 entry = %+v", e)
	}
	want := map[Stage][]string{
		StageCreate:  {"mke2fs"},
		StageMount:   {"mount"},
		StageOnline:  {"e4defrag", "resize2fs"},
		StageOffline: {"e2fsck", "resize2fs"},
	}
	for st, us := range want {
		got := e.Utilities[st]
		if len(got) != len(us) {
			t.Errorf("Ext4 %s = %v, want %v", st, got, us)
			continue
		}
		for i := range us {
			if got[i] != us[i] {
				t.Errorf("Ext4 %s[%d] = %s, want %s", st, i, got[i], us[i])
			}
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if Lookup("FAT32") != nil {
		t.Error("unknown fs should return nil")
	}
}

func TestStageStrings(t *testing.T) {
	names := map[Stage]string{
		StageCreate: "Create", StageMount: "Mount",
		StageOnline: "Online", StageOffline: "Offline",
	}
	for st, n := range names {
		if st.String() != n {
			t.Errorf("%d = %q, want %q", st, st.String(), n)
		}
	}
	if Stage(99).String() != "Unknown" {
		t.Error("unknown stage string")
	}
	if len(Stages()) != 4 {
		t.Error("Stages should list 4 entries")
	}
}
