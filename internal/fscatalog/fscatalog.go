// Package fscatalog reproduces Table 1 of the paper: the registry of
// configuration methods across popular file systems. Every file system
// follows the same modular design — it can be configured at four
// stages (create, mount, online, offline) through separate utilities —
// which is why the multi-level dependency problem is not specific to
// Ext4 or Linux.
package fscatalog

// Stage is one of the four configuration stages of Figure 2.
type Stage uint8

// The four configuration stages.
const (
	StageCreate Stage = iota + 1
	StageMount
	StageOnline
	StageOffline
)

// String names the stage as in Table 1's column headers.
func (s Stage) String() string {
	switch s {
	case StageCreate:
		return "Create"
	case StageMount:
		return "Mount"
	case StageOnline:
		return "Online"
	case StageOffline:
		return "Offline"
	default:
		return "Unknown"
	}
}

// Stages lists the four stages in table order.
func Stages() []Stage {
	return []Stage{StageCreate, StageMount, StageOnline, StageOffline}
}

// Entry is one row of Table 1.
type Entry struct {
	// FS is the file system name.
	FS string
	// OS is the operating system it ships with.
	OS string
	// Utilities maps each stage to example utilities that can affect
	// the file system's configuration state at that stage. An empty
	// slice reproduces the table's "-" cells.
	Utilities map[Stage][]string
}

// Catalog returns the Table 1 rows in the paper's order.
func Catalog() []Entry {
	return []Entry{
		{FS: "Ext4", OS: "Linux", Utilities: map[Stage][]string{
			StageCreate:  {"mke2fs"},
			StageMount:   {"mount"},
			StageOnline:  {"e4defrag", "resize2fs"},
			StageOffline: {"e2fsck", "resize2fs"},
		}},
		{FS: "XFS", OS: "Linux", Utilities: map[Stage][]string{
			StageCreate:  {"mkfs.xfs"},
			StageMount:   {"mount"},
			StageOnline:  {"xfs_fsr", "xfs_growfs"},
			StageOffline: {"xfs_admin", "xfs_repair"},
		}},
		{FS: "BtrFS", OS: "Linux", Utilities: map[Stage][]string{
			StageCreate:  {"mkfs.btrfs"},
			StageMount:   {"mount"},
			StageOnline:  {"btrfs-balance", "btrfs-scrub"},
			StageOffline: {"btrfs-check"},
		}},
		{FS: "UFS", OS: "FreeBSD", Utilities: map[Stage][]string{
			StageCreate:  {"newfs"},
			StageMount:   {"mount"},
			StageOnline:  {"growfs", "restore"},
			StageOffline: {"dump", "fsck_ufs"},
		}},
		{FS: "ZFS", OS: "FreeBSD", Utilities: map[Stage][]string{
			StageCreate:  {"zfs-create"},
			StageMount:   {"zfs-mount"},
			StageOnline:  {"zfs-rollback", "zfs-set"},
			StageOffline: {"zfs-destroy"},
		}},
		{FS: "MINIX", OS: "Minix", Utilities: map[Stage][]string{
			StageCreate:  {"mkfs"},
			StageMount:   {"mount"},
			StageOnline:  {},
			StageOffline: {"fsck"},
		}},
		{FS: "NTFS", OS: "Windows", Utilities: map[Stage][]string{
			StageCreate:  {"format"},
			StageMount:   {"mountvol"},
			StageOnline:  {"chkdsk", "defrag"},
			StageOffline: {"chkdsk", "shrink"},
		}},
		{FS: "APFS", OS: "MacOS", Utilities: map[Stage][]string{
			StageCreate:  {"diskutil"},
			StageMount:   {"diskutil", "mount_apfs"},
			StageOnline:  {"diskutil"},
			StageOffline: {"diskutil", "fsck_apfs"},
		}},
	}
}

// Lookup returns the catalog entry for the named file system, or nil.
func Lookup(fs string) *Entry {
	for _, e := range Catalog() {
		if e.FS == fs {
			c := e
			return &c
		}
	}
	return nil
}

// MultiStage reports whether the file system can be reconfigured at
// more than one stage (true for every entry — the paper's point).
func (e *Entry) MultiStage() bool {
	n := 0
	for _, us := range e.Utilities {
		if len(us) > 0 {
			n++
		}
	}
	return n > 1
}
