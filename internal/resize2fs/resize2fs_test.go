package resize2fs

import (
	"bytes"
	"errors"
	"testing"

	"fsdep/internal/e2fsck"
	"fsdep/internal/fsim"
	"fsdep/internal/mke2fs"
	"fsdep/internal/mountsim"
)

// mkFs formats a 16 MiB image with the given features and returns the
// device.
func mkFs(t *testing.T, features []string) *fsim.MemDevice {
	t.Helper()
	dev := fsim.NewMemDevice(16 << 20)
	_, err := mke2fs.Run(dev, mke2fs.Params{
		BlockSize: 1024,
		Features:  features,
	})
	if err != nil {
		t.Fatalf("mke2fs: %v", err)
	}
	return dev
}

func audit(t *testing.T, dev fsim.Device) []fsim.Problem {
	t.Helper()
	fs, err := fsim.Open(dev)
	if err != nil {
		t.Fatalf("open for audit: %v", err)
	}
	return fs.Audit()
}

func TestGrowClean(t *testing.T) {
	dev := mkFs(t, nil)
	fs, _ := fsim.Open(dev)
	old := fs.SB.BlocksCount
	rep, err := Run(dev, Options{Size: old + 8192, FixedFreeBlocks: true})
	if err != nil {
		t.Fatalf("grow: %v", err)
	}
	if !rep.Grew || rep.NewBlocks != old+8192 {
		t.Fatalf("report = %+v", rep)
	}
	if probs := audit(t, dev); len(probs) != 0 {
		t.Fatalf("grown fs not clean: %v", probs)
	}
}

func TestGrowPreservesData(t *testing.T) {
	dev := mkFs(t, nil)
	fs, _ := fsim.Open(dev)
	ino, err := fs.CreateFile(fsim.RootIno, "keep.txt")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("precious "), 512)
	if err := fs.WriteFile(ino, payload); err != nil {
		t.Fatal(err)
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	old := fs.SB.BlocksCount
	if _, err := Run(dev, Options{Size: old + 8192, FixedFreeBlocks: true}); err != nil {
		t.Fatalf("grow: %v", err)
	}
	fs2, _ := fsim.Open(dev)
	got, err := fs2.ReadFile(ino)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("data lost after grow: err=%v len=%d", err, len(got))
	}
}

func TestFigure1SparseSuper2GrowCorrupts(t *testing.T) {
	// The paper's Figure 1: sparse_super2 enabled (mke2fs) + size
	// parameter larger than the fs (resize2fs) ⇒ metadata corruption
	// with incorrect free blocks.
	dev := mkFs(t, []string{"sparse_super2"})
	fs, _ := fsim.Open(dev)
	old := fs.SB.BlocksCount

	rep, err := Run(dev, Options{Size: old + 8192}) // buggy path by default
	if err != nil {
		t.Fatalf("resize2fs returned an error instead of corrupting silently: %v", err)
	}
	if !rep.Grew {
		t.Fatal("expected growth")
	}
	probs := audit(t, dev)
	var freeBlocksBad bool
	for _, p := range probs {
		if p.Code == fsim.PFreeBlocksCount {
			freeBlocksBad = true
		}
	}
	if !freeBlocksBad {
		t.Fatalf("Figure-1 corruption not reproduced; audit = %v", probs)
	}

	// e2fsck -f -y detects and repairs the damage.
	ck, err := e2fsck.Run(dev, e2fsck.Options{Force: true, Yes: true})
	if err != nil {
		t.Fatalf("e2fsck: %v", err)
	}
	if ck.ExitCode != e2fsck.ExitFixed {
		t.Fatalf("e2fsck exit = %d, problems = %v", ck.ExitCode, ck.Remaining)
	}
	if probs := audit(t, dev); len(probs) != 0 {
		t.Fatalf("still dirty after fsck: %v", probs)
	}
}

func TestFigure1FixedPathIsClean(t *testing.T) {
	dev := mkFs(t, []string{"sparse_super2"})
	fs, _ := fsim.Open(dev)
	old := fs.SB.BlocksCount
	if _, err := Run(dev, Options{Size: old + 8192, FixedFreeBlocks: true}); err != nil {
		t.Fatal(err)
	}
	if probs := audit(t, dev); len(probs) != 0 {
		t.Fatalf("fixed resize path left problems: %v", probs)
	}
}

func TestFigure1RequiresBothConditions(t *testing.T) {
	// Without sparse_super2 the buggy order is not taken: growth is
	// clean even with FixedFreeBlocks=false.
	dev := mkFs(t, nil)
	fs, _ := fsim.Open(dev)
	old := fs.SB.BlocksCount
	if _, err := Run(dev, Options{Size: old + 8192}); err != nil {
		t.Fatal(err)
	}
	if probs := audit(t, dev); len(probs) != 0 {
		t.Fatalf("non-sparse_super2 grow corrupted: %v", probs)
	}
	// With sparse_super2 but no expansion (same size), nothing happens.
	dev2 := mkFs(t, []string{"sparse_super2"})
	fs2, _ := fsim.Open(dev2)
	if _, err := Run(dev2, Options{Size: fs2.SB.BlocksCount}); err != nil {
		t.Fatal(err)
	}
	if probs := audit(t, dev2); len(probs) != 0 {
		t.Fatalf("no-op resize corrupted: %v", probs)
	}
}

func TestGrowBeyondReservedGdtFails(t *testing.T) {
	// CCD: resize2fs growth depends on mke2fs's resize_inode
	// reservation. Without it, growth needing more descriptor blocks
	// must be refused.
	dev := fsim.NewMemDevice(16 << 20)
	_, err := mke2fs.Run(dev, mke2fs.Params{
		BlockSize: 1024,
		Features:  []string{"^resize_inode"},
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := fsim.Open(dev)
	if fs.SB.ReservedGdtBlks != 0 {
		t.Fatalf("reserved gdt = %d, want 0", fs.SB.ReservedGdtBlks)
	}
	// Growth to 33× the size needs more descriptor blocks than the
	// zero reservation allows (1024-byte blocks hold 32 descriptors).
	_, err = Run(dev, Options{Size: fs.SB.BlocksCount * 33, FixedFreeBlocks: true})
	var ue *UtilError
	if !errors.As(err, &ue) || ue.Related != "resize_inode" {
		t.Fatalf("err = %v, want resize_inode UtilError", err)
	}
}

func TestGrowWithMetaBGUnbounded(t *testing.T) {
	dev := fsim.NewMemDevice(64 << 20)
	_, err := mke2fs.Run(dev, mke2fs.Params{
		BlockSize: 1024,
		Features:  []string{"meta_bg", "^resize_inode"},
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := fsim.Open(dev)
	if _, err := Run(dev, Options{Size: fs.SB.BlocksCount * 4, FixedFreeBlocks: true}); err != nil {
		t.Fatalf("meta_bg grow failed: %v", err)
	}
	if probs := audit(t, dev); len(probs) != 0 {
		t.Fatalf("meta_bg grow not clean: %v", probs)
	}
}

func TestShrinkRequiresFsck(t *testing.T) {
	dev := mkFs(t, nil)
	// Mount+unmount bumps MntCount, so shrink must demand e2fsck.
	m, err := mountsim.Do(dev, mountsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Unmount(); err != nil {
		t.Fatal(err)
	}
	fs, _ := fsim.Open(dev)
	old := fs.SB.BlocksCount
	_, err = Run(dev, Options{Size: old - 8192})
	var ue *UtilError
	if !errors.As(err, &ue) || ue.Related != "e2fsck" {
		t.Fatalf("err = %v, want e2fsck dependency", err)
	}
	// After e2fsck -f the shrink proceeds.
	if _, err := e2fsck.Run(dev, e2fsck.Options{Force: true, Yes: true}); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(dev, Options{Size: old - 8192})
	if err != nil {
		t.Fatalf("shrink after fsck: %v", err)
	}
	if rep.GroupsRemoved == 0 {
		t.Errorf("report = %+v", rep)
	}
	if probs := audit(t, dev); len(probs) != 0 {
		t.Fatalf("shrunk fs not clean: %v", probs)
	}
}

func TestShrinkRefusesLosingData(t *testing.T) {
	dev := mkFs(t, nil)
	fs, _ := fsim.Open(dev)
	// Fill a file that lands in the last group.
	ino, _ := fs.CreateFile(fsim.RootIno, "big")
	if err := fs.WriteFile(ino, bytes.Repeat([]byte{9}, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	min := minimumBlocks(fs)
	_, err := Run(dev, Options{Size: min - 1024, Force: true})
	if err == nil {
		t.Fatal("shrink below minimum succeeded")
	}
}

func TestRefuseMounted(t *testing.T) {
	dev := mkFs(t, nil)
	m, err := mountsim.Do(dev, mountsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Unmount() }()
	fs, _ := fsim.Open(dev)
	if _, err := Run(dev, Options{Size: fs.SB.BlocksCount + 1024}); err == nil {
		t.Fatal("resize of a mounted fs succeeded")
	}
}

func TestGrowFillsDeviceWhenSizeOmitted(t *testing.T) {
	dev := mkFs(t, nil)
	if err := dev.Resize(32 << 20); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(dev, Options{FixedFreeBlocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NewBlocks != 32<<10 { // 32 MiB / 1 KiB blocks
		t.Errorf("new blocks = %d, want %d", rep.NewBlocks, 32<<10)
	}
	if probs := audit(t, dev); len(probs) != 0 {
		t.Fatalf("not clean: %v", probs)
	}
}

func TestMinimumOnlyShrink(t *testing.T) {
	dev := mkFs(t, nil)
	if _, err := e2fsck.Run(dev, e2fsck.Options{Force: true, Yes: true}); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(dev, Options{MinimumOnly: true})
	if err != nil {
		t.Fatalf("shrink -M: %v", err)
	}
	if rep.NewBlocks >= rep.OldBlocks {
		t.Errorf("minimum shrink did not shrink: %+v", rep)
	}
	if probs := audit(t, dev); len(probs) != 0 {
		t.Fatalf("not clean: %v", probs)
	}
}
