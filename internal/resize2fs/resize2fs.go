// Package resize2fs simulates resize2fs(8): offline growing and
// shrinking of fsim file systems.
//
// It reproduces the paper's Figure-1 bug: when the sparse_super2
// feature is enabled and the size parameter exceeds the current file
// system size (an expansion), the buggy code path computes the free
// blocks count for the last group *before* adding the new blocks to
// the group, leaving the group descriptor (and the superblock total)
// inconsistent with the block bitmap — metadata corruption that
// e2fsck later reports as incorrect free counts. The fix is guarded by
// Options.FixedFreeBlocks (default false = ship the bug, as in the
// e2fsprogs release the paper studied).
package resize2fs

import (
	"fmt"

	"fsdep/internal/fsim"
)

// Options is the resize2fs parameter surface.
type Options struct {
	// Size is the requested size in blocks (the positional <size>
	// parameter). 0 means "fill the device".
	Size uint32
	// Force is -f: skip some safety refusals.
	Force bool
	// MinimumOnly is -M: shrink to the minimum possible size.
	MinimumOnly bool
	// FixedFreeBlocks applies the upstream fix for the Figure-1
	// sparse_super2 expansion bug. Default false reproduces the bug.
	FixedFreeBlocks bool
}

// UtilError is a resize2fs rejection naming the parameter at fault.
type UtilError struct {
	Param   string
	Related string
	Msg     string
}

// Error implements error.
func (e *UtilError) Error() string {
	if e.Related != "" {
		return fmt.Sprintf("resize2fs: %s/%s: %s", e.Param, e.Related, e.Msg)
	}
	return fmt.Sprintf("resize2fs: %s: %s", e.Param, e.Msg)
}

// Report summarizes a resize run.
type Report struct {
	// OldBlocks and NewBlocks are the before/after sizes.
	OldBlocks, NewBlocks uint32
	// GroupsAdded/GroupsRemoved count block-group changes.
	GroupsAdded, GroupsRemoved uint32
	// Grew marks an expansion.
	Grew bool
}

// Run resizes the file system on dev to opts.Size blocks.
func Run(dev fsim.Device, opts Options) (*Report, error) {
	fs, err := fsim.Open(dev)
	if err != nil {
		return nil, fmt.Errorf("resize2fs: %w", err)
	}
	sb := fs.SB
	if sb.State&fsim.StateMounted != 0 {
		return nil, &UtilError{Param: "device", Msg: "file system is mounted; resize2fs is offline-only here"}
	}
	if sb.State&fsim.StateErrors != 0 && !opts.Force {
		return nil, &UtilError{Param: "device", Msg: "file system has errors; run e2fsck first"}
	}

	newBlocks := opts.Size
	bs := sb.BlockSize()
	if opts.MinimumOnly {
		newBlocks = minimumBlocks(fs)
	} else if newBlocks == 0 {
		newBlocks = uint32(dev.Size() / int64(bs))
	}
	ratio := sb.ClusterRatio()
	newBlocks -= newBlocks % ratio

	rep := &Report{OldBlocks: sb.BlocksCount, NewBlocks: newBlocks}
	switch {
	case newBlocks == sb.BlocksCount:
		return rep, nil
	case newBlocks > sb.BlocksCount:
		rep.Grew = true
		if err := grow(fs, newBlocks, opts, rep); err != nil {
			return nil, err
		}
	default:
		// Shrinking requires a fresh e2fsck pass: the simulator
		// models "checked since last mount" as MntCount == 0
		// (e2fsck resets the counter, mount increments it).
		if sb.MntCount != 0 && !opts.Force {
			return nil, &UtilError{Param: "size", Related: "e2fsck",
				Msg: "please run e2fsck -f before shrinking"}
		}
		if err := shrink(fs, newBlocks, rep); err != nil {
			return nil, err
		}
	}
	if err := fs.Flush(); err != nil {
		return nil, fmt.Errorf("resize2fs: flushing: %w", err)
	}
	return rep, nil
}

// minimumBlocks estimates the smallest size the fs can shrink to:
// everything up to the last used cluster, rounded up to the cluster.
func minimumBlocks(fs *fsim.Fs) uint32 {
	sb := fs.SB
	last := sb.FirstDataBlock
	var in fsim.Inode
	for ino := uint32(1); ino <= sb.InodesCount; ino++ {
		if err := fs.ReadInodeInto(ino, &in); err != nil || !in.InUse() {
			continue
		}
		for i := uint16(0); i < in.ExtentCount; i++ {
			e := in.Extents[i]
			if end := e.Start + e.Len; end > last {
				last = end
			}
		}
	}
	// Keep at least the first group's metadata region.
	groups := sb.GroupCount()
	for gi := uint32(0); gi < groups; gi++ {
		m := fs.GroupMetaOf(gi)
		if m.DataFirst > last && gi == 0 {
			last = m.DataFirst
		}
	}
	ratio := sb.ClusterRatio()
	last = (last + ratio - 1) / ratio * ratio
	return last
}

// grow expands the file system to newBlocks.
func grow(fs *fsim.Fs, newBlocks uint32, opts Options, rep *Report) error {
	sb := fs.SB
	bs := sb.BlockSize()
	oldBlocks := sb.BlocksCount
	oldGroups := sb.GroupCount()

	// Capacity check: the descriptor table must fit in the space
	// reserved at mke2fs time (resize_inode), unless meta_bg places
	// descriptors per group. This is the cross-component dependency
	// between resize2fs <size> and mke2fs -O resize_inode.
	newGroups := groupCountFor(sb, newBlocks)
	if !sb.HasIncompat(fsim.IncompatMetaBG) {
		oldGd := (oldGroups*fsim.GroupDescSize + bs - 1) / bs
		capacity := oldGd + uint32(sb.ReservedGdtBlks)
		newGd := (newGroups*fsim.GroupDescSize + bs - 1) / bs
		if newGd > capacity {
			return &UtilError{Param: "size", Related: "resize_inode",
				Msg: fmt.Sprintf("new size needs %d descriptor blocks but only %d are reserved; recreate with more resize_inode headroom or meta_bg", newGd, capacity)}
		}
	}

	if err := fs.Device().Resize(int64(newBlocks) * int64(bs)); err != nil {
		return fmt.Errorf("resize2fs: growing device: %w", err)
	}

	// Step 1: extend the old last group if it was short.
	lastGi := oldGroups - 1
	sb.BlocksCount = newBlocks // group extents derive from the new size

	if opts.FixedFreeBlocks || !sb.HasCompat(fsim.CompatSparseSuper2) {
		// Correct order: add the new blocks to the group (clear the
		// padding bits), then compute the free count.
		if err := fs.ExtendGroupBitmap(lastGi, oldBlocks); err != nil {
			return err
		}
		if err := fs.RecountGroupFree(lastGi); err != nil {
			return err
		}
	} else {
		// BUG (Figure 1): the free count for the last group is
		// calculated before the new blocks are added, so the stale
		// count is stored while the bitmap gains free clusters.
		if err := fs.RecountGroupFree(lastGi); err != nil {
			return err
		}
		if err := fs.ExtendGroupBitmap(lastGi, oldBlocks); err != nil {
			return err
		}
	}

	// Step 2: lay out entirely new groups.
	added, err := fs.AppendGroups(newGroups)
	if err != nil {
		return err
	}
	rep.GroupsAdded = added

	// Step 3: refresh global counters from per-group state.
	fs.RecountSuper()
	return nil
}

func groupCountFor(sb *fsim.Superblock, blocks uint32) uint32 {
	data := blocks - sb.FirstDataBlock
	return (data + sb.BlocksPerGroup - 1) / sb.BlocksPerGroup
}

// shrink reduces the file system to newBlocks.
func shrink(fs *fsim.Fs, newBlocks uint32, rep *Report) error {
	sb := fs.SB
	if newBlocks < minimumBlocks(fs) {
		return &UtilError{Param: "size",
			Msg: fmt.Sprintf("%d blocks is below the minimum (%d); data relocation is not supported by the simulator", newBlocks, minimumBlocks(fs))}
	}
	newGroups := groupCountFor(sb, newBlocks)
	oldGroups := sb.GroupCount()

	// No allocated inodes may live in removed groups.
	for gi := newGroups; gi < oldGroups; gi++ {
		if used := sb.InodesPerGroup - fs.GDs[gi].FreeInodesCount; used > 0 {
			return &UtilError{Param: "size",
				Msg: fmt.Sprintf("group %d still holds %d inodes; inode relocation is not supported", gi, used)}
		}
	}
	if err := fs.TruncateGroups(newGroups, newBlocks); err != nil {
		return err
	}
	rep.GroupsRemoved = oldGroups - newGroups
	fs.RecountSuper()
	bs := sb.BlockSize()
	return fs.Device().Resize(int64(newBlocks) * int64(bs))
}
