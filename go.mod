module fsdep

go 1.22
